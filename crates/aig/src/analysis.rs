//! Structural analyses: levels, fanout, path depths and path counts.
//!
//! These are the raw graph quantities from which the paper's Table II
//! features are derived (see the `features` crate), and the proxy
//! metrics (level ≈ delay, node count ≈ area) used by the baseline
//! optimization flow.

use crate::graph::Aig;
use crate::lit::{Lit, NodeId};

/// Per-node logic levels of an [`Aig`].
///
/// Inputs and the constant node have level 0; an AND node has level
/// `1 + max(level(fanin0), level(fanin1))`.
#[derive(Clone, Debug)]
pub struct Levels {
    /// `level[id]` for every node id.
    pub level: Vec<u32>,
    /// Maximum level over all primary-output drivers.
    pub max_level: u32,
}

/// Computes logic levels for every node (the paper's delay proxy).
///
/// # Examples
///
/// ```
/// use aig::{Aig, analysis::levels};
///
/// let mut g = Aig::new();
/// let a = g.add_input();
/// let b = g.add_input();
/// let c = g.add_input();
/// let ab = g.and(a, b);
/// let abc = g.and(ab, c);
/// g.add_output(abc, None::<&str>);
/// assert_eq!(levels(&g).max_level, 2);
/// ```
pub fn levels(aig: &Aig) -> Levels {
    let mut out = Levels {
        level: Vec::new(),
        max_level: 0,
    };
    levels_into(aig, &mut out);
    out
}

/// [`levels`] into a caller-owned buffer, reusing its allocation.
///
/// The evaluation contexts of the SA loop call this once per
/// candidate; reusing `out.level` keeps the per-iteration analysis
/// allocation-free once the buffer has grown to the largest graph
/// seen.
pub fn levels_into(aig: &Aig, out: &mut Levels) {
    out.level.clear();
    out.level.resize(aig.num_nodes(), 0);
    let level = &mut out.level;
    let (f0s, f1s) = aig.fanin_arrays();
    aig.for_each_and_topo(|id| {
        let (f0, f1) = (f0s[id as usize], f1s[id as usize]);
        level[id as usize] = 1 + level[f0.var() as usize].max(level[f1.var() as usize]);
    });
    out.max_level = aig
        .outputs()
        .iter()
        .map(|o| level[o.lit.var() as usize])
        .max()
        .unwrap_or(0);
}

/// Computes the fanout count of every node.
///
/// Fanout counts include both AND fanins and primary-output drivers,
/// matching Fig. 4(b) of the paper where output edges contribute to a
/// node's annotated weight.
pub fn fanout_counts(aig: &Aig) -> Vec<u32> {
    let mut fanout = Vec::new();
    fanout_counts_into(aig, &mut fanout);
    fanout
}

/// [`fanout_counts`] into a caller-owned buffer, reusing its
/// allocation (see [`levels_into`] for the rationale).
pub fn fanout_counts_into(aig: &Aig, fanout: &mut Vec<u32>) {
    fanout.clear();
    fanout.resize(aig.num_nodes(), 0);
    // Flat lane scan: no per-node id filtering, the INVALID check on
    // `fanin0` doubles as the is-AND test.
    let (f0s, f1s) = aig.fanin_arrays();
    for (f0, f1) in f0s.iter().zip(f1s.iter()) {
        if *f0 == Lit::INVALID {
            continue;
        }
        fanout[f0.var() as usize] += 1;
        fanout[f1.var() as usize] += 1;
    }
    for o in aig.outputs() {
        fanout[o.lit.var() as usize] += 1;
    }
}

/// How each node contributes to a weighted path depth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepthWeight {
    /// Every node (inputs included, per Fig. 4(a)) weighs 1.
    Unit,
    /// Every node weighs its fanout count (Fig. 4(b)).
    Fanout,
    /// Nodes with fanout `>= threshold` weigh 1, others 0
    /// (Fig. 4(c) uses `threshold = 2`).
    FanoutAtLeast(u32),
}

/// Maximum weighted depth seen at each primary output.
///
/// Follows the paper's convention (Fig. 4): the depth of a PO counts
/// the nodes between the PO and a PI, *including* the PI node and
/// *excluding* the PO itself (the PO is a port, not a gate). The
/// constant node contributes 0.
///
/// Returns one value per primary output, in output order.
pub fn po_depths(aig: &Aig, weight: DepthWeight) -> Vec<u64> {
    let fanout;
    let node_weight: Box<dyn Fn(NodeId) -> u64> = match weight {
        DepthWeight::Unit => Box::new(|_| 1),
        DepthWeight::Fanout => {
            fanout = fanout_counts(aig);
            let f = fanout;
            Box::new(move |id| u64::from(f[id as usize]))
        }
        DepthWeight::FanoutAtLeast(t) => {
            let f = fanout_counts(aig);
            Box::new(move |id| u64::from(f[id as usize] >= t))
        }
    };
    // depth[id] = weighted longest path from any PI down to and
    // including node id. Constant node = 0, PIs = their own weight.
    let mut depth = vec![0u64; aig.num_nodes()];
    for &pi in aig.inputs() {
        depth[pi as usize] = node_weight(pi);
    }
    aig.for_each_and_topo(|id| {
        let [f0, f1] = aig.fanins(id);
        let d = depth[f0.var() as usize].max(depth[f1.var() as usize]);
        depth[id as usize] = d + node_weight(id);
    });
    aig.outputs()
        .iter()
        .map(|o| depth[o.lit.var() as usize])
        .collect()
}

/// Number of PI-to-PO paths reaching each primary output.
///
/// Counted as in Fig. 4(d): each PI contributes one path, and an AND
/// node accumulates the path counts of both fanins. Counts are `f64`
/// and saturate to `f64::MAX` instead of overflowing (deep multiplier
/// AIGs exceed `u128` path counts easily).
pub fn po_path_counts(aig: &Aig) -> Vec<f64> {
    let mut paths = vec![0.0f64; aig.num_nodes()];
    for &pi in aig.inputs() {
        paths[pi as usize] = 1.0;
    }
    aig.for_each_and_topo(|id| {
        let [f0, f1] = aig.fanins(id);
        let p = paths[f0.var() as usize] + paths[f1.var() as usize];
        paths[id as usize] = if p.is_finite() { p } else { f64::MAX };
    });
    aig.outputs()
        .iter()
        .map(|o| paths[o.lit.var() as usize])
        .collect()
}

/// Ids of the nodes lying on at least one topologically *longest* path
/// (`depth(node) + height(node) == max_level`), the paper's "long
/// path" node set used for `long_path_fanout_*` features.
pub fn long_path_nodes(aig: &Aig) -> Vec<NodeId> {
    let lv = levels(aig);
    if aig.num_ands() == 0 {
        return Vec::new();
    }
    // height[id]: longest distance (in AND nodes) from id to any PO
    // driver that it can reach.
    let n = aig.num_nodes();
    let mut height = vec![i64::MIN; n];
    for o in aig.outputs() {
        height[o.lit.var() as usize] = height[o.lit.var() as usize].max(0);
    }
    let mut propagate = |id: NodeId| {
        if height[id as usize] == i64::MIN {
            return;
        }
        let h = height[id as usize];
        let [f0, f1] = aig.fanins(id);
        for f in [f0, f1] {
            let v = f.var() as usize;
            height[v] = height[v].max(h + 1);
        }
    };
    if aig.is_topological() {
        for id in (1..n as NodeId).rev() {
            if aig.is_and(id) {
                propagate(id);
            }
        }
    } else {
        // Consumers before fanins: reverse dependency order.
        for &id in aig.topo_and_order().iter().rev() {
            propagate(id);
        }
    }
    let max = i64::from(lv.max_level);
    (1..n as NodeId)
        .filter(|&id| {
            height[id as usize] != i64::MIN
                && i64::from(lv.level[id as usize]) + height[id as usize] == max
        })
        .collect()
}

/// Size of the maximum fanout-free cone (MFFC) of `root`: the number
/// of AND nodes that would become dangling if `root` were removed.
///
/// `fanout` must come from [`fanout_counts`] on the same graph.
pub fn mffc_size(aig: &Aig, root: NodeId, fanout: &[u32]) -> usize {
    if !aig.is_and(root) {
        return 0;
    }
    // Simulated deref: count nodes whose fanout drops to zero.
    let mut deref: std::collections::HashMap<NodeId, u32> = std::collections::HashMap::new();
    let mut stack = vec![root];
    let mut count = 0usize;
    while let Some(id) = stack.pop() {
        count += 1;
        let [f0, f1] = aig.fanins(id);
        for f in [f0, f1] {
            let v = f.var();
            if !aig.is_and(v) {
                continue;
            }
            let d = deref.entry(v).or_insert(0);
            *d += 1;
            if *d == fanout[v as usize] {
                stack.push(v);
            }
        }
    }
    count
}

/// Extracts the transitive fanin cone of the given outputs as a
/// standalone [`Aig`].
///
/// Inputs of the original graph that feed the cone become the inputs
/// of the extracted graph (in original input order); `output_indices`
/// select which outputs to keep.
///
/// # Panics
///
/// Panics if any index in `output_indices` is out of bounds.
pub fn extract_cone(aig: &Aig, output_indices: &[usize]) -> Aig {
    let mut live = vec![false; aig.num_nodes()];
    let mut stack: Vec<NodeId> = output_indices
        .iter()
        .map(|&i| aig.outputs()[i].lit.var())
        .collect();
    while let Some(id) = stack.pop() {
        if live[id as usize] {
            continue;
        }
        live[id as usize] = true;
        if aig.is_and(id) {
            let [f0, f1] = aig.fanins(id);
            stack.push(f0.var());
            stack.push(f1.var());
        }
    }
    let mut out = Aig::new();
    out.set_name(format!("{}_cone", aig.name()));
    let mut map = vec![crate::Lit::INVALID; aig.num_nodes()];
    map[0] = crate::Lit::FALSE;
    for (idx, &pi) in aig.inputs().iter().enumerate() {
        if live[pi as usize] {
            map[pi as usize] = out.add_named_input(aig.input_name(idx).map(str::to_owned));
        }
    }
    aig.for_each_and_topo(|id| {
        if !live[id as usize] {
            return;
        }
        let [f0, f1] = aig.fanins(id);
        let a = map[f0.var() as usize].complement_if(f0.is_complement());
        let b = map[f1.var() as usize].complement_if(f1.is_complement());
        map[id as usize] = out.and(a, b);
    });
    for &i in output_indices {
        let o = &aig.outputs()[i];
        let l = map[o.lit.var() as usize].complement_if(o.lit.is_complement());
        out.add_output(l, o.name.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lit;

    fn chain(n: usize) -> Aig {
        // f = x0 & x1 & ... & x_{n} as a linear chain.
        let mut g = Aig::new();
        let mut acc = g.add_input();
        for _ in 0..n {
            let x = g.add_input();
            acc = g.and(acc, x);
        }
        g.add_output(acc, None::<&str>);
        g
    }

    #[test]
    fn chain_levels() {
        let g = chain(5);
        assert_eq!(levels(&g).max_level, 5);
    }

    #[test]
    fn unit_depth_counts_pi() {
        // Single AND of two PIs: depth per Fig 4(a) = PI + AND = 2.
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        let f = g.and(a, b);
        g.add_output(f, None::<&str>);
        assert_eq!(po_depths(&g, DepthWeight::Unit), vec![2]);
    }

    #[test]
    fn po_direct_from_pi() {
        let mut g = Aig::new();
        let a = g.add_input();
        g.add_output(a, None::<&str>);
        assert_eq!(po_depths(&g, DepthWeight::Unit), vec![1]);
        assert_eq!(po_path_counts(&g), vec![1.0]);
    }

    #[test]
    fn po_from_const() {
        let mut g = Aig::new();
        g.add_output(Lit::TRUE, None::<&str>);
        assert_eq!(po_depths(&g, DepthWeight::Unit), vec![0]);
        assert_eq!(po_path_counts(&g), vec![0.0]);
    }

    #[test]
    fn fanout_includes_outputs() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        let f = g.and(a, b);
        g.add_output(f, None::<&str>);
        g.add_output(f, None::<&str>);
        let fo = fanout_counts(&g);
        assert_eq!(fo[f.var() as usize], 2);
        assert_eq!(fo[a.var() as usize], 1);
    }

    #[test]
    fn binary_weight_zeroes_low_fanout() {
        let g = chain(4);
        // Every node has fanout 1, so all weights are 0.
        let d = po_depths(&g, DepthWeight::FanoutAtLeast(2));
        assert_eq!(d, vec![0]);
        // With threshold 1 every node weighs 1 -> same as unit depth.
        assert_eq!(
            po_depths(&g, DepthWeight::FanoutAtLeast(1)),
            po_depths(&g, DepthWeight::Unit)
        );
    }

    #[test]
    fn path_counts_xor_tree() {
        // xor(a, b) has 2 AND-level paths from each input: 2+2 = 4
        // paths at the top node... count concretely.
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        let x = g.xor(a, b);
        g.add_output(x, None::<&str>);
        let p = po_path_counts(&g);
        assert_eq!(p, vec![4.0]);
    }

    #[test]
    fn long_path_nodes_of_chain() {
        let g = chain(3);
        // All 3 AND nodes plus the two PIs on the longest path...
        // level-based criterion keeps nodes with level+height == max.
        let nodes = long_path_nodes(&g);
        let lv = levels(&g);
        for &id in &nodes {
            assert!(lv.level[id as usize] <= lv.max_level);
        }
        // The final AND is certainly on the longest path.
        assert!(nodes.contains(&g.outputs()[0].lit.var()));
    }

    #[test]
    fn mffc_of_private_cone() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        let c = g.add_input();
        let ab = g.and(a, b);
        let abc = g.and(ab, c);
        g.add_output(abc, None::<&str>);
        let fo = fanout_counts(&g);
        assert_eq!(mffc_size(&g, abc.var(), &fo), 2);
    }

    #[test]
    fn mffc_stops_at_shared() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        let c = g.add_input();
        let ab = g.and(a, b);
        let abc = g.and(ab, c);
        g.add_output(abc, None::<&str>);
        g.add_output(ab, None::<&str>); // ab now shared
        let fo = fanout_counts(&g);
        assert_eq!(mffc_size(&g, abc.var(), &fo), 1);
    }

    #[test]
    fn cone_extraction() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        let c = g.add_input();
        let f0 = g.and(a, b);
        let f1 = g.and(b, c);
        g.add_output(f0, Some("f0"));
        g.add_output(f1, Some("f1"));
        let cone = extract_cone(&g, &[0]);
        assert_eq!(cone.num_inputs(), 2); // a, b only
        assert_eq!(cone.num_outputs(), 1);
        assert_eq!(cone.num_ands(), 1);
    }
}
