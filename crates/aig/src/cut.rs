//! K-feasible cut enumeration with cut functions.
//!
//! Cuts are the workhorse of both the rewriting engine (4-input cuts
//! resynthesized against an NPN cache) and the technology mapper
//! (4-input cuts Boolean-matched against the cell library). Because
//! the SA loop re-enumerates cuts on every candidate, this module is
//! the hottest code in the repository and is written allocation-free:
//!
//! * [`Cut`] keeps its leaves in an inline `[NodeId; 6]` (ABC-style)
//!   with a separate length, so cuts are `Copy` and merging two leaf
//!   sets never touches the heap;
//! * every cut carries a 64-bit Bloom-style *signature* of its leaf
//!   set; `sig_a & !sig_b != 0` proves `a ⊄ b`, which prefilters both
//!   the k-feasibility of merges (via a popcount bound) and the
//!   dominance scan in O(1);
//! * the truth table is masked to the cut's width once, at
//!   construction, instead of on every [`Cut::tt`] call;
//! * [`CutSet`] stores all cut lists in one flat arena indexed by
//!   per-node spans, so enumeration performs no per-node `Vec`
//!   allocations.
//!
//! The previous `Vec`-backed implementation survives as
//! [`enumerate_cuts_naive`]; parity tests assert both produce
//! identical cut sets, and the component benchmark measures the
//! speedup between them.
//!
//! For the SA loop's *in-place* moves, [`CutDb`] keeps the cut table
//! alive across graph edits: seeded by the
//! [`DirtyRegion`](crate::incremental::DirtyRegion) of a
//! substitution, it recomputes only the edited nodes and the part of
//! their transitive fanout whose lists actually change (equality
//! cutoff), and supports exact rollback in step with an edit
//! [`Transaction`](crate::incremental::Transaction). Its table is
//! bit-identical to a fresh [`enumerate_cuts`] after any edit
//! sequence.

use crate::graph::Aig;
use crate::lit::{Lit, NodeId};
use std::collections::BinaryHeap;

/// Maximum number of leaves a [`Cut`] can hold.
pub const MAX_CUT_SIZE: usize = 6;

/// A k-feasible cut of a node: a set of leaves plus the function of
/// the node expressed over those leaves.
///
/// Leaves are sorted ascending; [`Cut::tt`] is the truth table over
/// the leaves (leaf `i` is variable `i`), already masked to the cut's
/// width, valid for cuts of at most six leaves. The truth table is
/// expressed for the *plain* (uncomplemented) polarity of the root
/// node.
#[derive(Clone, Copy, Debug)]
pub struct Cut {
    leaves: [NodeId; MAX_CUT_SIZE],
    len: u8,
    sig: u64,
    tt: u64,
}

impl PartialEq for Cut {
    fn eq(&self, other: &Self) -> bool {
        // sig is derived from leaves; tt is stored masked — plain
        // field comparison after the cheap discriminators.
        self.len == other.len
            && self.sig == other.sig
            && self.tt == other.tt
            && self.leaves() == other.leaves()
    }
}

impl Eq for Cut {}

#[inline]
fn leaf_sig(leaf: NodeId) -> u64 {
    1u64 << (leaf & 63)
}

#[inline]
fn width_mask(len: usize) -> u64 {
    let bits = 1usize << len;
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

impl Cut {
    /// The trivial cut `{node}` with the identity function.
    pub fn trivial(node: NodeId) -> Cut {
        let mut leaves = [0; MAX_CUT_SIZE];
        leaves[0] = node;
        Cut {
            leaves,
            len: 1,
            sig: leaf_sig(node),
            tt: 0b10, // f = x0 over one variable
        }
    }

    /// Builds a cut from sorted-ascending `leaves` and a truth table
    /// (masked to the cut width on construction).
    ///
    /// # Panics
    ///
    /// Panics if `leaves` has more than [`MAX_CUT_SIZE`] entries or is
    /// not strictly ascending.
    pub fn from_leaves(leaves: &[NodeId], tt: u64) -> Cut {
        assert!(
            leaves.len() <= MAX_CUT_SIZE,
            "cut of {} leaves",
            leaves.len()
        );
        assert!(
            leaves.windows(2).all(|w| w[0] < w[1]),
            "cut leaves must be sorted ascending: {leaves:?}"
        );
        let mut arr = [0; MAX_CUT_SIZE];
        arr[..leaves.len()].copy_from_slice(leaves);
        let mut sig = 0;
        for &l in leaves {
            sig |= leaf_sig(l);
        }
        Cut {
            leaves: arr,
            len: leaves.len() as u8,
            sig,
            tt: tt & width_mask(leaves.len()),
        }
    }

    /// The cut leaves, ascending node ids.
    #[inline]
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves[..self.len as usize]
    }

    /// Number of leaves.
    #[inline]
    pub fn size(&self) -> usize {
        self.len as usize
    }

    /// The Bloom-style 64-bit signature of the leaf set (bit
    /// `leaf & 63` set for every leaf).
    #[inline]
    pub fn signature(&self) -> u64 {
        self.sig
    }

    /// The cut function over the leaves, masked to the cut width.
    #[inline]
    pub fn tt(&self) -> u64 {
        self.tt
    }

    /// The masked truth table (same as [`Cut::tt`]; the mask is
    /// applied once at construction, kept for API continuity).
    #[inline]
    pub fn masked_tt(&self) -> u64 {
        self.tt
    }

    /// Whether every leaf of `self` also appears in `other`
    /// (i.e. `self` dominates `other` and renders it redundant).
    #[inline]
    pub fn dominates(&self, other: &Cut) -> bool {
        if self.len > other.len || self.sig & !other.sig != 0 {
            return false;
        }
        self.subset_scan(other)
    }

    /// Exact subset test by merge scan (no signature prefilter);
    /// exposed for the property tests that validate the prefilter.
    #[doc(hidden)]
    pub fn subset_scan(&self, other: &Cut) -> bool {
        let a = self.leaves();
        let b = other.leaves();
        let mut j = 0;
        for &l in a {
            while j < b.len() && b[j] < l {
                j += 1;
            }
            if j == b.len() || b[j] != l {
                return false;
            }
            j += 1;
        }
        true
    }

    /// Merges the leaf sets of `a` and `b` into a new cut with
    /// truth table `tt`; `None` when the union exceeds `k` leaves.
    #[inline]
    fn merged_leaves(a: &Cut, b: &Cut, k: usize) -> Option<([NodeId; MAX_CUT_SIZE], u8, u64)> {
        let (la, lb) = (a.leaves(), b.leaves());
        let mut out = [0; MAX_CUT_SIZE];
        let (mut i, mut j, mut n) = (0, 0, 0usize);
        while i < la.len() || j < lb.len() {
            let next = if j == lb.len() || (i < la.len() && la[i] <= lb[j]) {
                let x = la[i];
                if j < lb.len() && lb[j] == x {
                    j += 1;
                }
                i += 1;
                x
            } else {
                let y = lb[j];
                j += 1;
                y
            };
            if n == k {
                return None;
            }
            out[n] = next;
            n += 1;
        }
        Some((out, n as u8, a.sig | b.sig))
    }
}

/// Per-node cut sets produced by [`enumerate_cuts`].
///
/// Cut lists are stored back-to-back in a single arena; `cuts(id)`
/// returns the node's span as a slice.
#[derive(Clone, Debug, Default)]
pub struct CutSet {
    arena: Vec<Cut>,
    span: Vec<(u32, u32)>,
    k: usize,
    // Scratch buffers for `enumerate_cuts_into`, kept here so a reused
    // `CutSet` makes re-enumeration allocation-free on the steady
    // state (the mapping context reuses one across thousands of
    // candidate AIGs).
    merged_scratch: Vec<Cut>,
    list_scratch: Vec<Cut>,
}

impl CutSet {
    /// The cuts of node `id` (trivial cut included, first).
    pub fn cuts(&self, id: NodeId) -> &[Cut] {
        let (s, e) = self.span[id as usize];
        &self.arena[s as usize..e as usize]
    }

    /// The cut-size bound `k` used during enumeration.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of stored cuts across all nodes.
    pub fn num_cuts(&self) -> usize {
        self.arena.len()
    }

    /// Pre-sizes the span table and cut arena for a graph of `nodes`
    /// nodes at up to `max_cuts` cuts each (capacity only; contents
    /// untouched). A following [`enumerate_cuts_into`] then performs
    /// no incremental regrowth.
    pub fn reserve_nodes(&mut self, nodes: usize, max_cuts: usize) {
        let grow = |cap: usize, len: usize| cap.saturating_sub(len);
        self.span.reserve(grow(nodes, self.span.len()));
        let cuts = nodes.saturating_mul(max_cuts.min(8) + 1);
        self.arena.reserve(grow(cuts, self.arena.len()));
    }
}

/// Duplicates each `2^p`-bit block of `tt`, i.e. inserts a don't-care
/// variable at position `p`. Butterfly spread by magic masks: the
/// input may occupy at most 32 bits (a 5-variable table), which holds
/// for every insertion on the way to a 6-variable result.
#[inline]
fn insert_var(tt: u64, p: usize) -> u64 {
    const SPREAD: [(u32, u64); 5] = [
        (1, 0x5555_5555_5555_5555),
        (2, 0x3333_3333_3333_3333),
        (4, 0x0F0F_0F0F_0F0F_0F0F),
        (8, 0x00FF_00FF_00FF_00FF),
        (16, 0x0000_FFFF_0000_FFFF),
    ];
    let k = 1u32 << p;
    let mut x = tt;
    for &(s, m) in SPREAD.iter().rev() {
        if s >= k {
            x = (x | (x << s)) & m;
        }
    }
    x | (x << k)
}

/// Re-expresses `tt` (over sorted leaf set `from`) over the sorted
/// superset leaf set `to`.
///
/// Runs one O(1) butterfly insertion per variable of `to` missing
/// from `from` (the hot operation of cut merging), instead of the
/// naive reference's O(2^n) per-minterm loop.
///
/// # Panics
///
/// Panics (debug) if `from` is not a subset of `to` or `to.len() > 6`.
pub fn expand_tt(tt: u64, from: &[NodeId], to: &[NodeId]) -> u64 {
    debug_assert!(to.len() <= MAX_CUT_SIZE);
    // Mask to `from`'s width first: the butterfly would otherwise OR
    // garbage high bits into valid positions of the result (the old
    // per-minterm loop ignored them implicitly).
    let mut t = tt & width_mask(from.len());
    // Invariant: `t` is expressed over the vars of `to[..i]` already
    // processed followed by the pending tail `from[j..]`; a var of
    // `to` absent from `from` is inserted at its final position `i`,
    // shifting the pending tail up by one.
    let mut j = 0;
    for (i, &v) in to.iter().enumerate() {
        if j < from.len() && from[j] == v {
            j += 1;
        } else {
            t = insert_var(t, i);
        }
    }
    debug_assert_eq!(j, from.len(), "`from` leaves must be a subset of `to`");
    t
}

/// Enumerates up to `max_cuts` k-feasible cuts per node, `k <= 6`.
///
/// Every node's cut list begins with its trivial cut. Dominated cuts
/// (supersets of another kept cut) are filtered; surplus cuts are
/// pruned preferring fewer leaves. Produces exactly the same cut sets
/// as [`enumerate_cuts_naive`] (asserted by the parity tests) while
/// performing no per-candidate allocation.
///
/// # Panics
///
/// Panics if `k > 6` or `k == 0`.
///
/// # Examples
///
/// ```
/// use aig::{Aig, cut::enumerate_cuts};
///
/// let mut g = Aig::new();
/// let a = g.add_input();
/// let b = g.add_input();
/// let c = g.add_input();
/// let ab = g.and(a, b);
/// let abc = g.and(ab, c);
/// g.add_output(abc, None::<&str>);
/// let cuts = enumerate_cuts(&g, 4, 8);
/// // abc has the trivial cut, {ab, c} and {a, b, c}.
/// assert!(cuts.cuts(abc.var()).len() >= 3);
/// ```
pub fn enumerate_cuts(aig: &Aig, k: usize, max_cuts: usize) -> CutSet {
    let mut out = CutSet::default();
    enumerate_cuts_into(aig, k, max_cuts, &mut out);
    out
}

/// [`enumerate_cuts`] into a caller-owned [`CutSet`], reusing its
/// arena and scratch allocations.
///
/// Re-enumerating into a warm `CutSet` is allocation-free once the
/// arena has grown to the largest graph seen; the technology mapper's
/// [reusable context](../../techmap) and the SA evaluation loop lean
/// on this. Produces exactly the cut sets [`enumerate_cuts`] produces
/// (the parity tests cover the reuse path).
///
/// # Panics
///
/// Panics if `k > 6` or `k == 0`.
pub fn enumerate_cuts_into(aig: &Aig, k: usize, max_cuts: usize, out: &mut CutSet) {
    assert!(
        (1..=MAX_CUT_SIZE).contains(&k),
        "cut size k must be in 1..=6"
    );
    let n = aig.num_nodes();
    out.k = k;
    let CutSet {
        arena,
        span,
        k: _,
        merged_scratch: merged,
        list_scratch: list,
    } = out;
    arena.clear();
    arena.reserve(n.saturating_mul(max_cuts.min(8) + 1));
    span.clear();
    span.resize(n, (0, 0));

    fn push_list(arena: &mut Vec<Cut>, span: &mut [(u32, u32)], id: NodeId, cuts: &[Cut]) {
        let s = arena.len() as u32;
        arena.extend_from_slice(cuts);
        span[id as usize] = (s, arena.len() as u32);
    }

    // Constant node: single empty cut with constant-false function.
    push_list(arena, span, 0, &[Cut::from_leaves(&[], 0)]);
    for &pi in aig.inputs() {
        push_list(arena, span, pi, &[Cut::trivial(pi)]);
    }

    let (f0s, f1s) = aig.fanin_arrays();
    aig.for_each_and_topo(|id| {
        let (f0, f1) = (f0s[id as usize], f1s[id as usize]);
        node_cut_list(f0, f1, id, k, max_cuts, arena, span, merged, list);
        push_list(arena, span, id, list);
    });
}

/// Computes the cut list of AND node `id` (fanins `f0`/`f1`, as read
/// from [`Aig::fanin_arrays`]) into `list`, reading the fanins' lists
/// through `(arena, span)`. This is the shared inner loop of
/// [`enumerate_cuts_into`] (full enumeration) and [`CutDb`]
/// (incremental re-enumeration); both therefore keep *identical*
/// per-node cut lists by construction.
#[allow(clippy::too_many_arguments)]
fn node_cut_list(
    f0: Lit,
    f1: Lit,
    id: NodeId,
    k: usize,
    max_cuts: usize,
    arena: &[Cut],
    span: &[(u32, u32)],
    merged: &mut Vec<Cut>,
    list: &mut Vec<Cut>,
) {
    list.clear();
    list.push(Cut::trivial(id));
    let (s0, e0) = span[f0.var() as usize];
    let (s1, e1) = span[f1.var() as usize];
    merged.clear();
    for i0 in s0..e0 {
        let c0 = arena[i0 as usize];
        for i1 in s1..e1 {
            let c1 = arena[i1 as usize];
            // Signature prefilter: the union has at least
            // popcount(sig0 | sig1) distinct leaves.
            if (c0.sig | c1.sig).count_ones() as usize > k {
                continue;
            }
            let Some((leaves, len, sig)) = Cut::merged_leaves(&c0, &c1, k) else {
                continue;
            };
            let leaves_s = &leaves[..len as usize];
            let t0 = expand_tt(c0.tt, c0.leaves(), leaves_s);
            let t1 = expand_tt(c1.tt, c1.leaves(), leaves_s);
            let mask = width_mask(len as usize);
            let t0 = if f0.is_complement() { !t0 & mask } else { t0 };
            let t1 = if f1.is_complement() { !t1 & mask } else { t1 };
            merged.push(Cut {
                leaves,
                len,
                sig,
                tt: t0 & t1,
            });
        }
    }
    // Visit candidates in size order (prefer small cuts) without
    // sorting: sizes span 1..=6, so stable size-bucket passes are
    // cheaper than a (heap-allocating) stable sort. Filter
    // dominated/duplicate cuts; `dominates` covers equality, and
    // its signature-subset prefilter rejects most candidates in
    // one AND.
    'fill: for size in 1..=k {
        for c in merged.iter() {
            if c.size() != size {
                continue;
            }
            if list.len() >= max_cuts {
                break 'fill;
            }
            if list.iter().any(|kept| kept.dominates(c)) {
                continue;
            }
            list.push(*c);
        }
    }
}

/// One open [`CutDb`] edit session: `(node, old span, old version)`
/// records plus the arena, span-table and live sizes at
/// [`CutDb::begin_edit`].
#[derive(Clone, Debug)]
struct EditJournal {
    old_spans: Vec<(NodeId, (u32, u32), u64)>,
    arena_len: usize,
    span_len: usize,
    live: usize,
}

/// An incrementally maintained per-node cut database.
///
/// [`enumerate_cuts`] recomputes every node's cut list from scratch —
/// the right tool when the whole graph changed. The SA loop's
/// in-place moves instead edit a handful of nodes, and a single
/// substitution can only change the cut sets of the edited nodes and
/// their transitive fanout. `CutDb` keeps the full per-node cut table
/// (same arena + span layout as [`CutSet`]) alive across edits:
///
/// * [`CutDb::build`] — full enumeration (cost of one
///   [`enumerate_cuts`]);
/// * [`CutDb::sync_appends`] — absorbs appended nodes only;
/// * [`CutDb::invalidate`] — seeded by a [`DirtyRegion`]'s
///   [`edited`](DirtyRegion::edited) set, recomputes dirty nodes in
///   ascending id order and propagates to a node's consumers **only
///   when its recomputed list actually changed** (equality cutoff),
///   so the cost tracks the true footprint of the edit;
/// * [`CutDb::begin_edit`] / [`CutDb::commit_edit`] /
///   [`CutDb::rollback_edit`] — bracket the updates belonging to one
///   speculative [`Transaction`](crate::incremental::Transaction), so
///   a rejected SA move also rolls the cut table back exactly.
///
/// Updated lists are appended to the arena and the node's span is
/// redirected; the stale region is garbage that [`CutDb::commit_edit`]
/// compacts away once it outweighs the live cuts. The maintained
/// table is **bit-identical** to a fresh enumeration after any edit
/// sequence ([`CutDb::assert_matches_fresh`] is the oracle check the
/// differential suite runs after every step) — which is what lets the
/// rewriting engine and the mapper consume cached cuts without any
/// behavioral difference from re-enumeration.
///
/// # Version counters
///
/// Every node carries a **cut-list version** ([`CutDb::version`]):
/// an opaque `u64` that changes *exactly* when the node's stored cut
/// list changes, drawn from a monotone counter whose values are never
/// reused. The contract downstream caches (the mapper's per-row DP
/// cutoff) key on:
///
/// * [`CutDb::build`] assigns every node a fresh value (the whole
///   table was rewritten);
/// * [`CutDb::sync_appends`] assigns fresh values to the appended
///   nodes only;
/// * [`CutDb::invalidate`] bumps a node's version iff the recomputed
///   list differs from the stored one (the equality cutoff that stops
///   propagation also leaves the version untouched);
/// * [`CutDb::rollback_edit`] restores the versions recorded since
///   [`CutDb::begin_edit`] **exactly** — and because bumped values
///   are never reused, a consumer that snapshotted a mid-edit version
///   still observes `snapshot != version` after the rollback, while a
///   consumer that never saw the speculative edit observes equality
///   (the list really is bit-identical to what it cached).
///
/// Version equality therefore *proves* the list is unchanged since
/// the compared snapshot; inequality means "maybe changed" (a
/// rollback restores the list and the version together, so no false
/// equalities exist in either direction). Snapshots must be keyed to
/// a database instance ([`CutDb::instance_id`]): clones evolve
/// independently and get a fresh identity.
#[derive(Debug)]
pub struct CutDb {
    k: usize,
    max_cuts: usize,
    /// Process-unique identity for version snapshots (fresh per clone,
    /// never reused — see the module docs on version counters).
    instance_id: u64,
    arena: Vec<Cut>,
    span: Vec<(u32, u32)>,
    /// Per-node cut-list versions (see the type docs).
    versions: Vec<u64>,
    /// Monotone version source; never decremented, not rolled back.
    vgen: u64,
    /// Total cuts across live spans (arena occupancy heuristic).
    live: usize,
    /// Open edit session, `None` outside one.
    journal: Option<EditJournal>,
    // Scratch.
    merged: Vec<Cut>,
    list: Vec<Cut>,
    heap: BinaryHeap<std::cmp::Reverse<NodeId>>,
    queued: Vec<bool>,
}

fn next_cutdb_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT_ID: AtomicU64 = AtomicU64::new(0);
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

impl Clone for CutDb {
    /// Clones the full table but under a **fresh**
    /// [`CutDb::instance_id`]: the clone evolves independently, so
    /// version snapshots taken against the original must not match it.
    fn clone(&self) -> Self {
        CutDb {
            instance_id: next_cutdb_id(),
            k: self.k,
            max_cuts: self.max_cuts,
            arena: self.arena.clone(),
            span: self.span.clone(),
            versions: self.versions.clone(),
            vgen: self.vgen,
            live: self.live,
            journal: self.journal.clone(),
            merged: self.merged.clone(),
            list: self.list.clone(),
            heap: self.heap.clone(),
            queued: self.queued.clone(),
        }
    }

    /// [`Clone::clone`] into an existing database, reusing its arena,
    /// span, and version allocations (the speculative engine re-syncs
    /// worker replicas from the master once per wave — on the steady
    /// state this copies element-for-element with no heap traffic).
    /// Semantics match `clone()`: the destination takes a **fresh**
    /// [`CutDb::instance_id`], so version snapshots taken against
    /// either database never cross-match.
    fn clone_from(&mut self, src: &Self) {
        self.instance_id = next_cutdb_id();
        self.k = src.k;
        self.max_cuts = src.max_cuts;
        self.arena.clone_from(&src.arena);
        self.span.clone_from(&src.span);
        self.versions.clone_from(&src.versions);
        self.vgen = src.vgen;
        self.live = src.live;
        self.journal.clone_from(&src.journal);
        self.merged.clone_from(&src.merged);
        self.list.clone_from(&src.list);
        self.heap.clone_from(&src.heap);
        self.queued.clone_from(&src.queued);
    }
}

impl CutDb {
    /// An empty database enumerating `k`-feasible cuts, up to
    /// `max_cuts` per node.
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `1..=6`.
    pub fn new(k: usize, max_cuts: usize) -> Self {
        assert!(
            (1..=MAX_CUT_SIZE).contains(&k),
            "cut size k must be in 1..=6"
        );
        CutDb {
            k,
            max_cuts,
            instance_id: next_cutdb_id(),
            arena: Vec::new(),
            span: Vec::new(),
            versions: Vec::new(),
            vgen: 0,
            live: 0,
            journal: None,
            merged: Vec::new(),
            list: Vec::new(),
            heap: BinaryHeap::new(),
            queued: Vec::new(),
        }
    }

    /// Process-unique identity of this database (fresh per
    /// [`CutDb::new`] and per clone). Version snapshots are only
    /// meaningful against the instance they were taken from.
    pub fn instance_id(&self) -> u64 {
        self.instance_id
    }

    /// The cut-list version of node `id` (see the type docs): equal
    /// to a previously snapshotted value iff the node's cut list is
    /// bit-identical to the snapshotted one.
    #[inline]
    pub fn version(&self, id: NodeId) -> u64 {
        self.versions[id as usize]
    }

    /// Draws a fresh, never-reused version value.
    fn bump(&mut self) -> u64 {
        self.vgen += 1;
        self.vgen
    }

    /// Pre-sizes the per-node tables and the cut arena for a graph of
    /// `nodes` nodes, so a following [`CutDb::build`] (or
    /// `clone_from` of a database that large) performs no incremental
    /// regrowth. Capacity only — contents are untouched.
    pub fn reserve_nodes(&mut self, nodes: usize) {
        let grow = |cap: usize, len: usize| cap.saturating_sub(len);
        self.span.reserve(grow(nodes, self.span.len()));
        self.versions.reserve(grow(nodes, self.versions.len()));
        self.queued.reserve(grow(nodes, self.queued.len()));
        let cuts = nodes.saturating_mul(self.max_cuts.min(8) + 1);
        self.arena.reserve(grow(cuts, self.arena.len()));
    }

    /// The cut-size bound `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The per-node cut-count bound.
    pub fn max_cuts(&self) -> usize {
        self.max_cuts
    }

    /// Number of nodes currently tracked.
    pub fn num_nodes(&self) -> usize {
        self.span.len()
    }

    /// The cuts of node `id` (trivial cut included, first).
    pub fn cuts(&self, id: NodeId) -> &[Cut] {
        let (s, e) = self.span[id as usize];
        &self.arena[s as usize..e as usize]
    }

    /// Full (re-)enumeration for `aig`, reusing the arena.
    ///
    /// # Panics
    ///
    /// Panics inside an open edit session.
    pub fn build(&mut self, aig: &Aig) {
        assert!(self.journal.is_none(), "build() inside an edit session");
        let n = aig.num_nodes();
        self.arena.clear();
        self.arena
            .reserve(n.saturating_mul(self.max_cuts.min(8) + 1));
        self.span.clear();
        self.span.resize(n, (0, 0));
        // The whole table is rewritten: every node gets a fresh
        // version, so any snapshot taken before the rebuild mismatches.
        let v = self.bump();
        self.versions.clear();
        self.versions.resize(n, v);
        self.queued.clear();
        self.queued.resize(n, false);
        self.push_list_for(0, &[Cut::from_leaves(&[], 0)]);
        for &pi in aig.inputs() {
            self.push_list_for(pi, &[Cut::trivial(pi)]);
        }
        let mut list = std::mem::take(&mut self.list);
        let mut merged = std::mem::take(&mut self.merged);
        let (f0s, f1s) = aig.fanin_arrays();
        aig.for_each_and_topo(|id| {
            node_cut_list(
                f0s[id as usize],
                f1s[id as usize],
                id,
                self.k,
                self.max_cuts,
                &self.arena,
                &self.span,
                &mut merged,
                &mut list,
            );
            self.push_list_for(id, &list);
        });
        self.list = list;
        self.merged = merged;
        self.live = self.arena.len();
    }

    /// Absorbs nodes appended to the same graph since the last
    /// `build`/`sync_appends` (cost proportional to the appended
    /// suffix).
    ///
    /// # Panics
    ///
    /// Panics if the graph shrank.
    pub fn sync_appends(&mut self, aig: &Aig) {
        let old_n = self.span.len();
        let n = aig.num_nodes();
        assert!(
            n >= old_n,
            "sync_appends() only supports append-only growth ({old_n} -> {n} nodes)"
        );
        self.span.resize(n, (0, 0));
        let v = self.bump();
        self.versions.resize(n, v);
        self.queued.resize(n, false);
        let mut list = std::mem::take(&mut self.list);
        let mut merged = std::mem::take(&mut self.merged);
        let (f0s, f1s) = aig.fanin_arrays();
        for id in old_n as NodeId..n as NodeId {
            if aig.is_and(id) {
                node_cut_list(
                    f0s[id as usize],
                    f1s[id as usize],
                    id,
                    self.k,
                    self.max_cuts,
                    &self.arena,
                    &self.span,
                    &mut merged,
                    &mut list,
                );
                self.push_list_for(id, &list);
                self.live += list.len();
            } else {
                self.push_list_for(id, &[Cut::trivial(id)]);
                self.live += 1;
            }
        }
        self.list = list;
        self.merged = merged;
    }

    /// Recomputes the cut lists invalidated by an in-place edit.
    ///
    /// `dirty` is the report of the edit
    /// ([`IncrementalAnalysis::substitute`] or accumulated across a
    /// transaction step); its [`edited`](DirtyRegion::edited) nodes
    /// seed an ascending worklist. Each popped node's list is
    /// recomputed from its (current) fanin lists; if the result
    /// differs from the stored list, the node's consumers (read from
    /// `inc`, which must be live for the same graph) are enqueued —
    /// if it is identical, propagation stops there (and the node's
    /// [version](CutDb::version) stays put; changed lists get a fresh
    /// version). After the call the table equals a fresh enumeration
    /// of the current graph.
    ///
    /// [`IncrementalAnalysis::substitute`]:
    /// crate::incremental::IncrementalAnalysis::substitute
    ///
    /// # Panics
    ///
    /// Panics if the database tracks a different node count than
    /// `aig` — a desynced database would read fanin cut lists through
    /// stale spans and corrupt the arena, so the mismatch is rejected
    /// in **all** build profiles (not just under `debug_assertions`).
    /// Call [`CutDb::build`] or [`CutDb::sync_appends`] first.
    pub fn invalidate(
        &mut self,
        aig: &Aig,
        inc: &crate::incremental::IncrementalAnalysis,
        dirty: &crate::incremental::DirtyRegion,
    ) {
        assert_eq!(
            self.span.len(),
            aig.num_nodes(),
            "cut database out of sync with the graph: call build() or sync_appends() first"
        );
        for &seed in dirty.edited() {
            self.enqueue(seed);
        }
        let mut list = std::mem::take(&mut self.list);
        let mut merged = std::mem::take(&mut self.merged);
        let (f0s, f1s) = aig.fanin_arrays();
        while let Some(std::cmp::Reverse(id)) = self.heap.pop() {
            self.queued[id as usize] = false;
            node_cut_list(
                f0s[id as usize],
                f1s[id as usize],
                id,
                self.k,
                self.max_cuts,
                &self.arena,
                &self.span,
                &mut merged,
                &mut list,
            );
            if self.cuts(id) == &list[..] {
                continue; // equality cutoff: consumers see no change
            }
            let old = self.span[id as usize];
            let old_version = self.versions[id as usize];
            if let Some(journal) = &mut self.journal {
                journal.old_spans.push((id, old, old_version));
            }
            self.live = self.live + list.len() - (old.1 - old.0) as usize;
            self.versions[id as usize] = self.bump();
            self.push_list_for(id, &list);
            for &c in inc.consumers(id) {
                self.enqueue(c);
            }
        }
        self.list = list;
        self.merged = merged;
    }

    /// Opens an edit session: span updates are journaled so
    /// [`CutDb::rollback_edit`] can revert them exactly.
    ///
    /// # Panics
    ///
    /// Panics if a session is already open.
    pub fn begin_edit(&mut self) {
        assert!(self.journal.is_none(), "edit session already open");
        self.journal = Some(EditJournal {
            old_spans: Vec::new(),
            arena_len: self.arena.len(),
            span_len: self.span.len(),
            live: self.live,
        });
    }

    /// Closes the edit session keeping every update, and compacts the
    /// arena when stale spans outweigh live cuts.
    ///
    /// # Panics
    ///
    /// Panics without an open session.
    pub fn commit_edit(&mut self) {
        assert!(self.journal.take().is_some(), "no edit session open");
        if self.arena.len() > self.live.saturating_mul(4) {
            self.compact();
        }
    }

    /// Closes the edit session reverting every update since
    /// [`CutDb::begin_edit`]: spans, appended suffix, **and the
    /// version counters** are restored exactly (the monotone version
    /// source itself is not rewound, so rolled-back values are never
    /// handed out again — see the type docs).
    ///
    /// # Panics
    ///
    /// Panics without an open session.
    pub fn rollback_edit(&mut self) {
        let journal = self.journal.take().expect("no edit session open");
        self.span.truncate(journal.span_len);
        self.versions.truncate(journal.span_len);
        self.queued.truncate(journal.span_len);
        for &(id, old, old_version) in journal.old_spans.iter().rev() {
            if (id as usize) < journal.span_len {
                self.span[id as usize] = old;
                self.versions[id as usize] = old_version;
            }
            // Entries for nodes appended within this session (an
            // invalidate can change a mid-session append's list) were
            // dropped wholesale by the truncation above.
        }
        self.arena.truncate(journal.arena_len);
        self.live = journal.live;
    }

    /// Rewrites the arena without the stale spans (relative order of
    /// live spans is irrelevant; lookups go through `span`).
    fn compact(&mut self) {
        let mut fresh: Vec<Cut> = Vec::with_capacity(self.live);
        for sp in self.span.iter_mut() {
            let (s, e) = *sp;
            let ns = fresh.len() as u32;
            fresh.extend_from_slice(&self.arena[s as usize..e as usize]);
            *sp = (ns, fresh.len() as u32);
        }
        self.arena = fresh;
        debug_assert_eq!(self.arena.len(), self.live);
    }

    fn push_list_for(&mut self, id: NodeId, cuts: &[Cut]) {
        let s = self.arena.len() as u32;
        self.arena.extend_from_slice(cuts);
        self.span[id as usize] = (s, self.arena.len() as u32);
    }

    fn enqueue(&mut self, id: NodeId) {
        if !self.queued[id as usize] {
            self.queued[id as usize] = true;
            self.heap.push(std::cmp::Reverse(id));
        }
    }

    /// Asserts every node's list equals a fresh [`enumerate_cuts`] of
    /// the current graph (differential-testing oracle; full-cost).
    ///
    /// # Panics
    ///
    /// Panics (with the node id) on the first mismatch.
    pub fn assert_matches_fresh(&self, aig: &Aig) {
        assert_eq!(self.span.len(), aig.num_nodes(), "node count diverged");
        let fresh = enumerate_cuts(aig, self.k, self.max_cuts);
        for id in aig.node_ids() {
            assert_eq!(
                self.cuts(id),
                fresh.cuts(id),
                "cut db diverged from fresh enumeration at node {id}"
            );
        }
    }
}

/// The seed's per-minterm truth-table expansion, retained as the
/// oracle for the butterfly [`expand_tt`] and so the naive reference
/// enumeration measures the full pre-optimization cost profile.
fn expand_tt_minterm(tt: u64, from: &[NodeId], to: &[NodeId]) -> u64 {
    let mut pos = [0usize; MAX_CUT_SIZE];
    let mut j = 0;
    for (i, &t) in to.iter().enumerate() {
        if j < from.len() && from[j] == t {
            pos[j] = i;
            j += 1;
        }
    }
    let bits = 1usize << to.len();
    let mut out = 0u64;
    for m in 0..bits {
        let mut src = 0usize;
        for (jj, &p) in pos.iter().enumerate().take(from.len()) {
            src |= ((m >> p) & 1) << jj;
        }
        out |= ((tt >> src) & 1) << m;
    }
    out
}

/// The pre-optimization reference implementation: heap-allocated leaf
/// vectors, no signatures, O(n²) full-leaf dominance scans.
///
/// Kept verbatim (modulo the [`Cut`] constructors) as the oracle for
/// the parity tests and as the baseline the `cut_enum` component
/// benchmark measures [`enumerate_cuts`] against.
///
/// # Panics
///
/// Panics if `k > 6` or `k == 0`.
pub fn enumerate_cuts_naive(aig: &Aig, k: usize, max_cuts: usize) -> Vec<Vec<Cut>> {
    assert!(
        (1..=MAX_CUT_SIZE).contains(&k),
        "cut size k must be in 1..=6"
    );
    fn merge_leaves(a: &[NodeId], b: &[NodeId], k: usize) -> Option<Vec<NodeId>> {
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            let next = match (a.get(i), b.get(j)) {
                (Some(&x), Some(&y)) if x == y => {
                    i += 1;
                    j += 1;
                    x
                }
                (Some(&x), Some(&y)) if x < y => {
                    i += 1;
                    x
                }
                (Some(_), Some(&y)) => {
                    j += 1;
                    y
                }
                (Some(&x), None) => {
                    i += 1;
                    x
                }
                (None, Some(&y)) => {
                    j += 1;
                    y
                }
                (None, None) => unreachable!(),
            };
            if out.len() == k {
                return None;
            }
            out.push(next);
        }
        Some(out)
    }
    fn dominates(a: &[NodeId], b: &[NodeId]) -> bool {
        if a.len() > b.len() {
            return false;
        }
        let mut j = 0;
        for &l in a {
            while j < b.len() && b[j] < l {
                j += 1;
            }
            if j == b.len() || b[j] != l {
                return false;
            }
        }
        true
    }
    let mut cuts: Vec<Vec<Cut>> = vec![Vec::new(); aig.num_nodes()];
    cuts[0].push(Cut::from_leaves(&[], 0));
    for &pi in aig.inputs() {
        cuts[pi as usize].push(Cut::trivial(pi));
    }
    for id in aig.and_ids() {
        let [f0, f1] = aig.fanins(id);
        let mut list: Vec<Cut> = vec![Cut::trivial(id)];
        let c0s = &cuts[f0.var() as usize];
        let c1s = &cuts[f1.var() as usize];
        let mut merged: Vec<(Vec<NodeId>, u64)> = Vec::new();
        for c0 in c0s {
            for c1 in c1s {
                let Some(leaves) = merge_leaves(c0.leaves(), c1.leaves(), k) else {
                    continue;
                };
                let t0 = expand_tt_minterm(c0.masked_tt(), c0.leaves(), &leaves);
                let t1 = expand_tt_minterm(c1.masked_tt(), c1.leaves(), &leaves);
                let mask = width_mask(leaves.len());
                let t0 = if f0.is_complement() { !t0 & mask } else { t0 };
                let t1 = if f1.is_complement() { !t1 & mask } else { t1 };
                merged.push((leaves, t0 & t1));
            }
        }
        merged.sort_by_key(|(leaves, _)| leaves.len());
        for (leaves, tt) in merged {
            if list.len() >= max_cuts {
                break;
            }
            if list
                .iter()
                .any(|kept| kept.leaves() == leaves || dominates(kept.leaves(), &leaves))
            {
                continue;
            }
            list.push(Cut::from_leaves(&leaves, tt));
        }
        cuts[id as usize] = list;
    }
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimTable;
    use crate::Lit;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn expand_identity() {
        let leaves = [3u32, 7, 9];
        assert_eq!(expand_tt(0b1010_1010, &leaves, &leaves), 0b1010_1010);
    }

    #[test]
    fn expand_inserts_var() {
        // f = x0 over {5}; expand to {2, 5}: x0 becomes var 1.
        let t = expand_tt(0b10, &[5], &[2, 5]);
        assert_eq!(t, 0b1100);
    }

    /// The butterfly expansion must agree with the retained
    /// per-minterm reference on random subsets and tables, at every
    /// width.
    #[test]
    fn butterfly_expand_matches_minterm_reference() {
        let reference = expand_tt_minterm;
        let mut rng = SmallRng::seed_from_u64(777);
        for _ in 0..5000 {
            let to_len = rng.gen_range(1usize..7);
            let mut to: Vec<NodeId> = Vec::new();
            while to.len() < to_len {
                let v = rng.gen_range(1u32..40);
                if !to.contains(&v) {
                    to.push(v);
                }
            }
            to.sort_unstable();
            let from: Vec<NodeId> = to.iter().copied().filter(|_| rng.gen::<bool>()).collect();
            if from.is_empty() {
                continue;
            }
            let tt = rng.gen::<u64>() & ((1u64 << (1 << from.len()).min(63)) - 1);
            assert_eq!(
                expand_tt(tt, &from, &to),
                reference(tt, &from, &to),
                "tt {tt:#x} from {from:?} to {to:?}"
            );
        }
    }

    #[test]
    fn dominance() {
        let small = Cut::from_leaves(&[1, 3], 0);
        let big = Cut::from_leaves(&[1, 2, 3], 0);
        assert!(small.dominates(&big));
        assert!(!big.dominates(&small));
        assert!(small.dominates(&small), "equal sets dominate");
    }

    #[test]
    fn construction_masks_tt_and_builds_signature() {
        let c = Cut::from_leaves(&[2, 5], u64::MAX);
        assert_eq!(c.tt(), 0b1111, "tt masked to 2^2 bits at construction");
        assert_eq!(c.masked_tt(), c.tt());
        assert_eq!(c.signature(), (1 << 2) | (1 << 5));
        // Signature wraps modulo 64.
        let c = Cut::from_leaves(&[64, 129], 0);
        assert_eq!(c.signature(), (1 << 0) | (1 << 1));
    }

    /// The signature prefilter may only produce false positives
    /// (claimed-maybe-subset that is not), never false negatives:
    /// whenever the exact scan says subset, the signatures must agree.
    #[test]
    fn signature_subset_agrees_with_exact_dominates() {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
        for _ in 0..20_000 {
            let mut mk = |max_len: usize| {
                let len = rng.gen_range(0..max_len + 1);
                let mut ls: Vec<NodeId> = Vec::new();
                while ls.len() < len {
                    let l = rng.gen_range(1u32..90);
                    if !ls.contains(&l) {
                        ls.push(l);
                    }
                }
                ls.sort_unstable();
                Cut::from_leaves(&ls, 0)
            };
            let a = mk(6);
            let b = mk(6);
            let exact = a.len <= b.len && a.subset_scan(&b);
            assert_eq!(
                a.dominates(&b),
                exact,
                "a={:?} b={:?}",
                a.leaves(),
                b.leaves()
            );
            if exact {
                assert_eq!(
                    a.signature() & !b.signature(),
                    0,
                    "prefilter must never reject a true subset"
                );
            }
        }
    }

    /// The optimized enumeration must keep exactly the cut sets the
    /// naive reference keeps — same cuts, same order, same functions.
    #[test]
    fn parity_with_naive_reference() {
        for seed in 0..12 {
            let g = crate::test_support::random_aig(seed, 8, 120, 4);
            for (k, max_cuts) in [(4, 8), (6, 5), (3, 12), (2, 4)] {
                let fast = enumerate_cuts(&g, k, max_cuts);
                let naive = enumerate_cuts_naive(&g, k, max_cuts);
                for id in g.node_ids() {
                    assert_eq!(
                        fast.cuts(id),
                        &naive[id as usize][..],
                        "seed {seed} node {id} k {k}"
                    );
                }
            }
        }
    }

    /// Cut truth tables must agree with simulation: for every cut of
    /// every node, evaluating the cut function on the leaves'
    /// simulated values must reproduce the node's simulated value.
    #[test]
    fn cut_functions_match_simulation() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        let c = g.add_input();
        let d = g.add_input();
        let ab = g.and(a, !b);
        let cd = g.or(c, d);
        let f = g.xor(ab, cd);
        let h = g.mux(a, f, cd);
        g.add_output(h, None::<&str>);
        let sim = SimTable::exhaustive(&g).expect("4 inputs");
        let cuts = enumerate_cuts(&g, 4, 12);
        for id in g.and_ids() {
            for cut in cuts.cuts(id) {
                let nbits = 1usize << g.num_inputs();
                for m in 0..nbits {
                    // Build the cut minterm from leaf values.
                    let mut idx = 0usize;
                    for (j, &leaf) in cut.leaves().iter().enumerate() {
                        if sim.node_bit(leaf, m) {
                            idx |= 1 << j;
                        }
                    }
                    let cut_val = cut.masked_tt() >> idx & 1 == 1;
                    assert_eq!(
                        cut_val,
                        sim.node_bit(id, m),
                        "node {id} cut {:?} minterm {m}",
                        cut.leaves()
                    );
                }
            }
        }
    }

    /// Random edit walks: after every substitution + invalidate (and
    /// every rolled-back speculative edit) the database must equal a
    /// fresh enumeration bit for bit.
    #[test]
    fn cutdb_tracks_fresh_enumeration_through_edits() {
        use crate::incremental::{IncrementalAnalysis, Transaction};
        for seed in 0..6u64 {
            let mut rng = SmallRng::seed_from_u64(0xCDB ^ seed);
            let mut g = crate::test_support::random_aig(seed, 7, 80, 3);
            let mut inc = IncrementalAnalysis::new(&g);
            let mut db = CutDb::new(4, 8);
            db.build(&g);
            db.assert_matches_fresh(&g);

            for _ in 0..12 {
                let commit = rng.gen::<bool>();
                db.begin_edit();
                let mut txn = Transaction::begin(&mut g, &mut inc);
                for _ in 0..rng.gen_range(1..4) {
                    let ands: Vec<NodeId> = txn.aig().and_ids().collect();
                    let node = ands[rng.gen_range(0..ands.len())];
                    let with = crate::Lit::new(rng.gen_range(0..node), rng.gen());
                    txn.substitute(node, with);
                    db.invalidate(txn.aig(), txn.analysis(), txn.analysis().last_dirty());
                }
                if commit {
                    txn.commit();
                    db.commit_edit();
                } else {
                    txn.rollback();
                    db.rollback_edit();
                }
                db.assert_matches_fresh(&g);
            }
        }
    }

    /// Appends are absorbed incrementally, and compaction (forced by
    /// many edits) preserves the table.
    #[test]
    fn cutdb_sync_appends_and_compaction() {
        use crate::incremental::IncrementalAnalysis;
        let mut rng = SmallRng::seed_from_u64(99);
        let mut g = crate::test_support::random_aig(3, 6, 50, 2);
        let mut inc = IncrementalAnalysis::new(&g);
        let mut db = CutDb::new(4, 8);
        db.build(&g);
        for round in 0..30 {
            // Grow a little...
            let n = g.num_nodes() as NodeId;
            let a = Lit::new(rng.gen_range(0..n), rng.gen());
            let b = Lit::new(rng.gen_range(0..n), rng.gen());
            g.and(a, b);
            inc.sync(&g);
            db.sync_appends(&g);
            // ...then churn one substitution, committing every time so
            // stale spans accumulate and compaction eventually fires.
            let ands: Vec<NodeId> = g.and_ids().collect();
            let node = ands[rng.gen_range(0..ands.len())];
            let with = Lit::new(rng.gen_range(0..node), rng.gen());
            db.begin_edit();
            inc.substitute(&mut g, node, with);
            db.invalidate(&g, &inc, inc.last_dirty());
            db.commit_edit();
            db.assert_matches_fresh(&g);
            let _ = round;
        }
        assert!(
            db.arena.len() <= db.live.saturating_mul(4),
            "commit_edit must keep the arena compact"
        );
    }

    #[test]
    #[should_panic(expected = "edit session")]
    fn cutdb_rejects_unpaired_commit() {
        let mut db = CutDb::new(4, 8);
        db.commit_edit();
    }

    /// A node appended *inside* an edit session whose list is then
    /// changed by an `invalidate` in the same session (its journal
    /// entry indexes past the pre-edit length) must roll back
    /// cleanly: the truncation drops the appended suffix, and the
    /// journaled entry for it is skipped rather than written out of
    /// bounds.
    #[test]
    fn cutdb_rollback_with_mid_session_appends() {
        use crate::incremental::{IncrementalAnalysis, Transaction};
        let mut g = crate::test_support::random_aig(5, 6, 40, 2);
        let mut inc = IncrementalAnalysis::new(&g);
        let mut db = CutDb::new(4, 8);
        db.build(&g);
        let x = g
            .and_ids()
            .find(|&id| !inc.consumers(id).is_empty())
            .expect("an AND with consumers");
        let last = g.num_nodes() as NodeId - 1;

        db.begin_edit();
        let mut txn = Transaction::begin(&mut g, &mut inc);
        let before = txn.aig().num_nodes();
        let z = txn.and(Lit::new(x, false), Lit::new(last, true));
        assert!(
            txn.aig().num_nodes() > before,
            "appended node must be fresh (z = {z:?})"
        );
        db.sync_appends(txn.aig());
        // Rewiring x's readers changes z's cut list too, journaling a
        // span beyond the pre-edit length.
        txn.substitute(x, Lit::new(0, true));
        db.invalidate(txn.aig(), txn.analysis(), txn.analysis().last_dirty());
        txn.rollback();
        db.rollback_edit();
        db.assert_matches_fresh(&g);
    }

    /// A desynced database must be rejected in every build profile —
    /// silently reading fanin lists through stale spans would corrupt
    /// the arena (this used to be a `debug_assert`).
    #[test]
    #[should_panic(expected = "out of sync")]
    fn cutdb_invalidate_rejects_desynced_graph() {
        use crate::incremental::IncrementalAnalysis;
        let mut g = crate::test_support::random_aig(1, 5, 30, 2);
        let mut db = CutDb::new(4, 8);
        db.build(&g);
        // Grow the graph behind the database's back.
        let a = Lit::new(g.inputs()[0], false);
        let b = Lit::new(*g.inputs().last().unwrap(), true);
        g.and(a, b);
        let inc = IncrementalAnalysis::new(&g);
        db.invalidate(&g, &inc, &crate::incremental::DirtyRegion::default());
    }

    /// Version-counter contract: versions change exactly when a
    /// node's list changes, build/sync_appends hand out fresh values,
    /// rollback restores values exactly, and a mid-edit bump is never
    /// equal to the restored value (monotone source).
    #[test]
    fn cutdb_version_counters_track_list_changes() {
        use crate::incremental::{IncrementalAnalysis, Transaction};
        let mut g = crate::test_support::random_aig(11, 6, 60, 3);
        let mut inc = IncrementalAnalysis::new(&g);
        let mut db = CutDb::new(4, 8);
        db.build(&g);
        let baseline: Vec<u64> = g.node_ids().map(|id| db.version(id)).collect();

        // Rebuild for the same graph: lists identical, but versions
        // must still move (the whole table was rewritten; equality
        // may only certify "unchanged since the snapshot *I* took").
        db.build(&g);
        for id in g.node_ids() {
            assert_ne!(db.version(id), baseline[id as usize], "node {id}");
        }
        let before: Vec<u64> = g.node_ids().map(|id| db.version(id)).collect();

        // A committed substitution: exactly the nodes whose lists
        // changed get new versions.
        let pre_lists: Vec<Vec<Cut>> = g.node_ids().map(|id| db.cuts(id).to_vec()).collect();
        let node = g
            .and_ids()
            .find(|&id| !inc.consumers(id).is_empty())
            .expect("some AND has consumers");
        let with = Lit::new(g.inputs()[0], false);
        db.begin_edit();
        let mut txn = Transaction::begin(&mut g, &mut inc);
        txn.substitute(node, with);
        db.invalidate(txn.aig(), txn.analysis(), txn.analysis().last_dirty());
        txn.commit();
        db.commit_edit();
        let mut changed = 0;
        for id in g.node_ids() {
            let bumped = db.version(id) != before[id as usize];
            let list_changed = db.cuts(id) != &pre_lists[id as usize][..];
            assert_eq!(
                bumped, list_changed,
                "version must move iff the list changed (node {id})"
            );
            changed += usize::from(bumped);
        }
        assert!(changed > 0, "the substitution must have changed lists");

        // A rolled-back edit restores versions exactly, and the
        // mid-edit values never reappear.
        let pre: Vec<u64> = g.node_ids().map(|id| db.version(id)).collect();
        let node = g
            .and_ids()
            .filter(|&id| !inc.consumers(id).is_empty())
            .nth(3)
            .expect("several ANDs have consumers");
        db.begin_edit();
        let mut txn = Transaction::begin(&mut g, &mut inc);
        txn.substitute(node, !with);
        db.invalidate(txn.aig(), txn.analysis(), txn.analysis().last_dirty());
        let mid: Vec<u64> = txn.aig().node_ids().map(|id| db.version(id)).collect();
        txn.rollback();
        db.rollback_edit();
        db.assert_matches_fresh(&g);
        for id in g.node_ids() {
            let vi = id as usize;
            assert_eq!(db.version(id), pre[vi], "rollback must restore versions");
            if mid[vi] != pre[vi] {
                // A consumer that snapshotted the speculative value
                // must still see a mismatch after the rollback.
                assert_ne!(db.version(id), mid[vi], "mid-edit value reused");
            }
        }

        // Clones get a fresh identity.
        let clone = db.clone();
        assert_ne!(clone.instance_id(), db.instance_id());
    }

    #[test]
    fn trivial_cut_first() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        let f = g.and(a, b);
        g.add_output(f, None::<&str>);
        let cuts = enumerate_cuts(&g, 4, 8);
        assert_eq!(cuts.cuts(f.var())[0].leaves(), &[f.var()]);
        assert_eq!(cuts.k(), 4);
        assert!(cuts.num_cuts() >= 4);
    }
}
