//! K-feasible cut enumeration with cut functions.
//!
//! Cuts are the workhorse of both the rewriting engine (4-input cuts
//! resynthesized against an NPN cache) and the technology mapper
//! (4-input cuts Boolean-matched against the cell library).

use crate::graph::Aig;
use crate::lit::NodeId;

/// A k-feasible cut of a node: a set of leaves plus the function of
/// the node expressed over those leaves.
///
/// `leaves` is sorted ascending; `tt` is the truth table over the
/// leaves (leaf `i` is variable `i`), valid for cuts of at most six
/// leaves. The truth table is expressed for the *plain* (uncomplemented)
/// polarity of the root node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cut {
    /// Cut leaves, ascending node ids.
    pub leaves: Vec<NodeId>,
    /// Function of the root over the leaves.
    pub tt: u64,
}

impl Cut {
    /// The trivial cut `{node}` with the identity function.
    pub fn trivial(node: NodeId) -> Cut {
        Cut {
            leaves: vec![node],
            tt: 0b10, // f = x0 over one variable (bits masked per-size)
        }
    }

    /// Number of leaves.
    pub fn size(&self) -> usize {
        self.leaves.len()
    }

    /// Whether every leaf of `self` also appears in `other`
    /// (i.e. `self` dominates `other` and renders it redundant).
    pub fn dominates(&self, other: &Cut) -> bool {
        if self.leaves.len() > other.leaves.len() {
            return false;
        }
        // Both sorted: subset test by merge scan.
        let mut j = 0;
        for &l in &self.leaves {
            while j < other.leaves.len() && other.leaves[j] < l {
                j += 1;
            }
            if j == other.leaves.len() || other.leaves[j] != l {
                return false;
            }
        }
        true
    }

    /// Masks `tt` to the valid bit width for this cut size.
    pub fn masked_tt(&self) -> u64 {
        let bits = 1usize << self.leaves.len();
        if bits >= 64 {
            self.tt
        } else {
            self.tt & ((1u64 << bits) - 1)
        }
    }
}

/// Per-node cut sets produced by [`enumerate_cuts`].
#[derive(Clone, Debug)]
pub struct CutSet {
    cuts: Vec<Vec<Cut>>,
    k: usize,
}

impl CutSet {
    /// The cuts of node `id` (trivial cut included, first).
    pub fn cuts(&self, id: NodeId) -> &[Cut] {
        &self.cuts[id as usize]
    }

    /// The cut-size bound `k` used during enumeration.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// Re-expresses `tt` (over sorted leaf set `from`) over the sorted
/// superset leaf set `to`.
///
/// # Panics
///
/// Panics (debug) if `from` is not a subset of `to` or `to.len() > 6`.
pub fn expand_tt(tt: u64, from: &[NodeId], to: &[NodeId]) -> u64 {
    debug_assert!(to.len() <= 6);
    // position map: var j of `from` is var pos[j] of `to`
    let mut pos = [0usize; 6];
    let mut j = 0;
    for (i, &t) in to.iter().enumerate() {
        if j < from.len() && from[j] == t {
            pos[j] = i;
            j += 1;
        }
    }
    debug_assert_eq!(j, from.len(), "`from` leaves must be a subset of `to`");
    let bits = 1usize << to.len();
    let mut out = 0u64;
    for m in 0..bits {
        let mut src = 0usize;
        for (jj, &p) in pos.iter().enumerate().take(from.len()) {
            src |= ((m >> p) & 1) << jj;
        }
        out |= ((tt >> src) & 1) << m;
    }
    out
}

/// Merges two sorted leaf sets; `None` if the union exceeds `k`.
fn merge_leaves(a: &[NodeId], b: &[NodeId], k: usize) -> Option<Vec<NodeId>> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                i += 1;
                j += 1;
                x
            }
            (Some(&x), Some(&y)) if x < y => {
                i += 1;
                x
            }
            (Some(_), Some(&y)) => {
                j += 1;
                y
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!(),
        };
        if out.len() == k {
            return None;
        }
        out.push(next);
    }
    Some(out)
}

/// Enumerates up to `max_cuts` k-feasible cuts per node, `k <= 6`.
///
/// Every node's cut list begins with its trivial cut. Dominated cuts
/// (strict supersets of another cut) are filtered; surplus cuts are
/// pruned preferring fewer leaves.
///
/// # Panics
///
/// Panics if `k > 6` or `k == 0`.
///
/// # Examples
///
/// ```
/// use aig::{Aig, cut::enumerate_cuts};
///
/// let mut g = Aig::new();
/// let a = g.add_input();
/// let b = g.add_input();
/// let c = g.add_input();
/// let ab = g.and(a, b);
/// let abc = g.and(ab, c);
/// g.add_output(abc, None::<&str>);
/// let cuts = enumerate_cuts(&g, 4, 8);
/// // abc has the trivial cut, {ab, c} and {a, b, c}.
/// assert!(cuts.cuts(abc.var()).len() >= 3);
/// ```
pub fn enumerate_cuts(aig: &Aig, k: usize, max_cuts: usize) -> CutSet {
    assert!((1..=6).contains(&k), "cut size k must be in 1..=6");
    let mut cuts: Vec<Vec<Cut>> = vec![Vec::new(); aig.num_nodes()];
    // Constant node: single empty cut with constant-false function.
    cuts[0].push(Cut {
        leaves: Vec::new(),
        tt: 0,
    });
    for &pi in aig.inputs() {
        cuts[pi as usize].push(Cut::trivial(pi));
    }
    for id in aig.and_ids() {
        let [f0, f1] = aig.fanins(id);
        let mut list: Vec<Cut> = vec![Cut::trivial(id)];
        let c0s = &cuts[f0.var() as usize];
        let c1s = &cuts[f1.var() as usize];
        let mut merged: Vec<Cut> = Vec::new();
        for c0 in c0s {
            for c1 in c1s {
                let Some(leaves) = merge_leaves(&c0.leaves, &c1.leaves, k) else {
                    continue;
                };
                let t0 = expand_tt(c0.masked_tt(), &c0.leaves, &leaves);
                let t1 = expand_tt(c1.masked_tt(), &c1.leaves, &leaves);
                let bits = 1usize << leaves.len();
                let mask = if bits >= 64 { u64::MAX } else { (1u64 << bits) - 1 };
                let t0 = if f0.is_complement() { !t0 & mask } else { t0 };
                let t1 = if f1.is_complement() { !t1 & mask } else { t1 };
                merged.push(Cut {
                    leaves,
                    tt: t0 & t1,
                });
            }
        }
        // Sort by size (prefer small cuts), filter dominated/duplicate.
        merged.sort_by_key(|c| c.leaves.len());
        for c in merged {
            if list.len() >= max_cuts {
                break;
            }
            if list
                .iter()
                .any(|kept| kept.leaves == c.leaves || kept.dominates(&c))
            {
                continue;
            }
            list.push(c);
        }
        cuts[id as usize] = list;
    }
    CutSet { cuts, k }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimTable;

    #[test]
    fn expand_identity() {
        let leaves = [3u32, 7, 9];
        assert_eq!(expand_tt(0b1010_1010, &leaves, &leaves), 0b1010_1010);
    }

    #[test]
    fn expand_inserts_var() {
        // f = x0 over {5}; expand to {2, 5}: x0 becomes var 1.
        let t = expand_tt(0b10, &[5], &[2, 5]);
        assert_eq!(t, 0b1100);
    }

    #[test]
    fn dominance() {
        let small = Cut {
            leaves: vec![1, 3],
            tt: 0,
        };
        let big = Cut {
            leaves: vec![1, 2, 3],
            tt: 0,
        };
        assert!(small.dominates(&big));
        assert!(!big.dominates(&small));
    }

    /// Cut truth tables must agree with simulation: for every cut of
    /// every node, evaluating the cut function on the leaves'
    /// simulated values must reproduce the node's simulated value.
    #[test]
    fn cut_functions_match_simulation() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        let c = g.add_input();
        let d = g.add_input();
        let ab = g.and(a, !b);
        let cd = g.or(c, d);
        let f = g.xor(ab, cd);
        let h = g.mux(a, f, cd);
        g.add_output(h, None::<&str>);
        let sim = SimTable::exhaustive(&g).expect("4 inputs");
        let cuts = enumerate_cuts(&g, 4, 12);
        for id in g.and_ids() {
            for cut in cuts.cuts(id) {
                let nbits = 1usize << g.num_inputs();
                for m in 0..nbits {
                    // Build the cut minterm from leaf values.
                    let mut idx = 0usize;
                    for (j, &leaf) in cut.leaves.iter().enumerate() {
                        if sim.node_bit(leaf, m) {
                            idx |= 1 << j;
                        }
                    }
                    let cut_val = cut.masked_tt() >> idx & 1 == 1;
                    assert_eq!(
                        cut_val,
                        sim.node_bit(id, m),
                        "node {id} cut {:?} minterm {m}",
                        cut.leaves
                    );
                }
            }
        }
    }

    #[test]
    fn trivial_cut_first() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        let f = g.and(a, b);
        g.add_output(f, None::<&str>);
        let cuts = enumerate_cuts(&g, 4, 8);
        assert_eq!(cuts.cuts(f.var())[0].leaves, vec![f.var()]);
        assert_eq!(cuts.k(), 4);
    }
}
