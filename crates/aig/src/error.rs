//! Error type shared by the `aig` crate.

use std::fmt;

/// Errors returned by AIG construction, analysis and I/O.
#[derive(Debug)]
pub enum AigError {
    /// The AIGER input could not be parsed.
    ParseAiger {
        /// 1-based line (ASCII) or byte offset (binary) of the error.
        position: usize,
        /// Human-readable description.
        msg: String,
    },
    /// An exhaustive analysis was requested on an AIG with too many
    /// inputs.
    TooManyInputs {
        /// Inputs present.
        inputs: usize,
        /// Supported maximum.
        max: usize,
    },
    /// Two AIGs were compared but their interfaces differ.
    Mismatch(String),
    /// A supported-format feature is absent (e.g. latches).
    Unsupported(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for AigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AigError::ParseAiger { position, msg } => {
                write!(f, "invalid AIGER at {position}: {msg}")
            }
            AigError::TooManyInputs { inputs, max } => {
                write!(
                    f,
                    "exhaustive analysis limited to {max} inputs, got {inputs}"
                )
            }
            AigError::Mismatch(msg) => write!(f, "{msg}"),
            AigError::Unsupported(msg) => write!(f, "unsupported feature: {msg}"),
            AigError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for AigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AigError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for AigError {
    fn from(e: std::io::Error) -> Self {
        AigError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = AigError::TooManyInputs {
            inputs: 20,
            max: 16,
        };
        assert!(format!("{e}").contains("20"));
        let e = AigError::ParseAiger {
            position: 3,
            msg: "bad header".into(),
        };
        assert!(format!("{e}").contains("3"));
        let e = AigError::Unsupported("latches".into());
        assert!(format!("{e}").contains("latches"));
    }

    #[test]
    fn error_trait_impls() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<AigError>();
    }
}
