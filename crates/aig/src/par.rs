//! Minimal data-parallel helpers backed by `std::thread::scope`.
//!
//! The workspace's embarrassingly parallel outer loops (variant
//! labeling, SA sweeps, multi-seed chains, design-suite construction)
//! and the simulator's word-parallel propagation all funnel through
//! this module, so parallelism policy lives in exactly one place:
//!
//! * the crate feature `parallel` (default on) compiles the threaded
//!   paths in; without it every helper runs serially;
//! * the environment variable `AIG_THREADS` overrides the worker
//!   count at runtime (`AIG_THREADS=1` forces serial execution for
//!   debugging or reproducing single-threaded timings);
//! * nested calls never oversubscribe: a `par_*` call made from
//!   inside a worker runs serially.
//!
//! Every helper is **deterministic**: results are returned in input
//! order and each item is computed by a pure call of the supplied
//! closure, so the output is identical for any worker count.

use std::sync::atomic::{AtomicUsize, Ordering};

#[cfg(feature = "parallel")]
std::thread_local! {
    static IN_PARALLEL_REGION: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// The number of worker threads `par_*` helpers may use.
///
/// Resolution order: `1` when the `parallel` feature is off or when
/// called from inside another `par_*` worker; otherwise `AIG_THREADS`
/// when set (values `< 1` clamp to `1`); otherwise the machine's
/// available parallelism.
pub fn max_threads() -> usize {
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
    #[cfg(feature = "parallel")]
    {
        if IN_PARALLEL_REGION.with(|f| f.get()) {
            return 1;
        }
        match std::env::var("AIG_THREADS") {
            Ok(s) => match s.trim().parse::<usize>() {
                Ok(n) => n.max(1),
                Err(_) => default_threads(),
            },
            Err(_) => default_threads(),
        }
    }
}

#[cfg(feature = "parallel")]
fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Worker count for long-lived CPU-bound slots ([`par_map_mut`]
/// callers): [`max_threads`] capped at the machine's available
/// parallelism. `AIG_THREADS` above the core count only adds spawn
/// and contention overhead for compute-bound dispatch, so slot pools
/// never oversubscribe — callers guarantee results are independent of
/// the worker count either way.
pub fn worker_threads() -> usize {
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
    #[cfg(feature = "parallel")]
    {
        max_threads().min(default_threads())
    }
}

/// Maps `f` over `items` (with the item index), in parallel, returning
/// results in input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(items, || (), move |(), i, t| f(i, t))
}

/// Like [`par_map`], but each worker first builds a reusable state via
/// `init` (e.g. one `Mapper` per worker) that `f` receives mutably —
/// the replacement for rayon's `map_init`.
pub fn par_map_with<T, S, R, FI, F>(items: &[T], init: FI, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let threads = max_threads().min(items.len());
    if threads <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }
    run_parallel(items, threads, &init, &f)
}

#[cfg(not(feature = "parallel"))]
fn run_parallel<T, S, R, FI, F>(items: &[T], _threads: usize, init: &FI, f: &F) -> Vec<R>
where
    FI: Fn() -> S,
    F: Fn(&mut S, usize, &T) -> R,
{
    let mut state = init();
    items
        .iter()
        .enumerate()
        .map(|(i, t)| f(&mut state, i, t))
        .collect()
}

#[cfg(feature = "parallel")]
fn run_parallel<T, S, R, FI, F>(items: &[T], threads: usize, init: &FI, f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            handles.push(scope.spawn(move || {
                IN_PARALLEL_REGION.with(|flag| flag.set(true));
                let mut state = init();
                // Work-stealing by atomic index: balances uneven item
                // costs (e.g. mapping differently sized AIGs).
                let mut out: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    out.push((i, f(&mut state, i, &items[i])));
                }
                out
            }));
        }
        for h in handles {
            for (i, r) in h.join().expect("par_map worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed by exactly one worker"))
        .collect()
}

/// Maps `f` over `items` *mutably*, in parallel, returning results in
/// input order — the helper behind worker-slot dispatch (each item is
/// a long-lived worker state such as a speculative SA evaluation
/// slot, mutated in place and reused across calls).
///
/// One thread per item (callers bound the slice length by
/// [`max_threads`]); a nested call — or a single-item slice — runs
/// serially on the caller's thread. Deterministic for any worker
/// count: item `i` is always computed by `f(i, &mut items[i])`.
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    if max_threads() <= 1 || items.len() <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    #[cfg(not(feature = "parallel"))]
    unreachable!("max_threads() is 1 without the parallel feature");
    #[cfg(feature = "parallel")]
    {
        let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(items.len());
            for (i, item) in items.iter_mut().enumerate() {
                let f = &f;
                handles.push(scope.spawn(move || {
                    IN_PARALLEL_REGION.with(|flag| flag.set(true));
                    f(i, item)
                }));
            }
            for h in handles {
                out.push(Some(h.join().expect("par_map_mut worker panicked")));
            }
        });
        out.into_iter()
            .map(|s| s.expect("joined in order"))
            .collect()
    }
}

/// Splits `0..n` into at most [`max_threads`] contiguous ranges of at
/// least `min_chunk` elements and runs `f` on each range in parallel.
///
/// The ranges partition `0..n` exactly; `f` must only touch state
/// belonging to its range (the caller guarantees disjointness).
pub fn par_ranges<F>(n: usize, min_chunk: usize, f: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    let min_chunk = min_chunk.max(1);
    let threads = max_threads().min(n.div_ceil(min_chunk)).max(1);
    if threads <= 1 {
        if n > 0 {
            f(0..n);
        }
        return;
    }
    #[cfg(feature = "parallel")]
    {
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            let mut start = 0;
            while start < n {
                let end = (start + chunk).min(n);
                let f = &f;
                scope.spawn(move || {
                    IN_PARALLEL_REGION.with(|flag| flag.set(true));
                    f(start..end);
                });
                start = end;
            }
        });
    }
    #[cfg(not(feature = "parallel"))]
    f(0..n);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_with_builds_worker_state() {
        let items: Vec<u64> = (0..64).collect();
        let out = par_map_with(
            &items,
            || 10u64,
            |state, _i, &x| {
                *state += 1; // worker-local; must not affect results
                x + 1
            },
        );
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn par_ranges_partitions_exactly() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let n = 1237;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        par_ranges(n, 8, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        par_ranges(0, 8, |_r| panic!("no range for n = 0"));
    }

    #[test]
    fn nested_calls_run_serially() {
        let outer: Vec<usize> = (0..4).collect();
        let out = par_map(&outer, |_, &x| {
            // Inside a worker max_threads() must report 1, so this
            // nested call cannot spawn further threads.
            let inner: Vec<usize> = (0..8).collect();
            let s: usize = par_map(&inner, |_, &y| y).iter().sum();
            (x, s, max_threads())
        });
        for &(_, s, mt) in &out {
            assert_eq!(s, 28);
            if cfg!(feature = "parallel") && max_threads() > 1 {
                assert_eq!(mt, 1, "nested region must be serial");
            }
        }
    }

    #[test]
    fn par_map_mut_mutates_in_order() {
        let mut slots: Vec<u64> = (0..6).collect();
        let out = par_map_mut(&mut slots, |i, s| {
            *s += 100;
            (i as u64, *s, max_threads())
        });
        assert_eq!(slots, vec![100, 101, 102, 103, 104, 105]);
        for (i, &(idx, val, mt)) in out.iter().enumerate() {
            assert_eq!(idx, i as u64);
            assert_eq!(val, 100 + i as u64);
            if cfg!(feature = "parallel") && max_threads() > 1 {
                assert_eq!(mt, 1, "slot workers are a parallel region");
            }
        }
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let items: Vec<u64> = (0..500).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9E37_79B9).rotate_left(13);
        let a = par_map(&items, f);
        let b: Vec<u64> = items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        assert_eq!(a, b);
    }
}
