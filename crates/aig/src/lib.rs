//! And-Inverter Graphs for logic synthesis research.
//!
//! This crate is the structural substrate of the `aig-timing` project,
//! a reproduction of *"ML-based AIG Timing Prediction to Enhance Logic
//! Optimization"* (DATE 2025). It provides:
//!
//! * [`Aig`] — a structurally hashed And-Inverter Graph with
//!   constant propagation and edge-complement representation;
//! * [`analysis`] — levels, fanout, weighted path depths and path
//!   counts (the raw material for the paper's Table II features);
//! * [`cut`] — k-feasible cut enumeration with cut truth tables
//!   (used by rewriting and technology mapping);
//! * [`tt`] — truth-table arithmetic, ISOP covers, NPN canonization;
//! * [`sim`] — bit-parallel random/exhaustive simulation and
//!   equivalence checking;
//! * [`aiger`] — ASCII and binary AIGER I/O;
//! * [`blif`] — combinational BLIF read (with `.names` synthesis)
//!   and write.
//!
//! # Examples
//!
//! Build a majority gate and verify an optimized rebuild against it:
//!
//! ```
//! use aig::{Aig, sim::equiv_exhaustive};
//!
//! let mut g = Aig::new();
//! let (a, b, c) = (g.add_input(), g.add_input(), g.add_input());
//! let ab = g.and(a, b);
//! let bc = g.and(b, c);
//! let ac = g.and(a, c);
//! let t = g.or(ab, bc);
//! let maj = g.or(t, ac);
//! g.add_output(maj, Some("maj"));
//!
//! let swept = g.sweep();
//! assert!(equiv_exhaustive(&g, &swept)?);
//! # Ok::<(), aig::AigError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aiger;
pub mod analysis;
pub mod blif;
pub mod cut;
mod error;
mod graph;
mod lit;
pub mod sim;
pub mod tt;

pub use error::AigError;
pub use graph::{Aig, AigStats, NodeKind, Output};
pub use lit::{Lit, NodeId};
