//! And-Inverter Graphs for logic synthesis research.
//!
//! This crate is the structural substrate of the `aig-timing` project,
//! a reproduction of *"ML-based AIG Timing Prediction to Enhance Logic
//! Optimization"* (DATE 2025). It provides:
//!
//! * [`Aig`] — a structurally hashed And-Inverter Graph with
//!   constant propagation and edge-complement representation;
//! * [`analysis`] — levels, fanout, weighted path depths and path
//!   counts (the raw material for the paper's Table II features);
//! * [`incremental`] — incrementally maintained levels/fanout with a
//!   dirty-region tracker, plus the edit
//!   [`Transaction`](incremental::Transaction) layer (speculative
//!   substitutions/retargets/appends with exact rollback of graph,
//!   strash table and analyses), so SA moves mutate the current
//!   graph in place and evaluation cost scales with the edit size
//!   instead of the graph size ([`analysis`] stays the
//!   full-recompute oracle);
//! * [`cut`] — k-feasible cut enumeration with cut truth tables
//!   (used by rewriting and technology mapping), and the
//!   [`CutDb`](cut::CutDb) incremental cut database invalidated by
//!   dirty regions instead of rebuilt;
//! * [`tt`] — truth-table arithmetic, ISOP covers, NPN canonization;
//! * [`sim`] — bit-parallel random/exhaustive simulation and
//!   equivalence checking;
//! * [`par`] — std::thread data-parallel helpers used by the hot
//!   paths across the workspace;
//! * [`aiger`] — ASCII and binary AIGER I/O;
//! * [`blif`] — combinational BLIF read (with `.names` synthesis)
//!   and write.
//!
//! # Hot-path design notes
//!
//! Cut enumeration is the inner loop of both rewriting and technology
//! mapping, and therefore of every SA iteration. [`cut::Cut`] stores
//! its leaves in an inline fixed-capacity array (`[NodeId; 6]` plus a
//! length, ABC-style) together with a precomputed 64-bit Bloom-style
//! *leaf signature*, so leaf merging and dominance filtering are
//! allocation-free and dominance checks short-circuit through an O(1)
//! signature-subset prefilter. Per-node cut lists live in one flat
//! arena inside [`cut::CutSet`]. The naive `Vec`-per-cut
//! implementation is retained as [`cut::enumerate_cuts_naive`] — it is
//! the oracle for the parity tests and the baseline for the
//! `cut_enum` component benchmark.
//!
//! Simulation ([`sim::SimTable`]) propagates either serially or in
//! parallel: wide tables split across the word dimension, narrow
//! tables level-by-level across nodes. Both orderings produce
//! bit-identical tables.
//!
//! # Parallelism switches
//!
//! All parallelism funnels through [`par`]: the `parallel` cargo
//! feature (default on) compiles the threaded paths, and the
//! `AIG_THREADS` environment variable sets the worker count at
//! runtime (`AIG_THREADS=1` forces fully serial, bit-identical
//! execution). Every parallel helper returns results in input order,
//! so outputs never depend on the worker count.
//!
//! # Examples
//!
//! Build a majority gate and verify an optimized rebuild against it:
//!
//! ```
//! use aig::{Aig, sim::equiv_exhaustive};
//!
//! let mut g = Aig::new();
//! let (a, b, c) = (g.add_input(), g.add_input(), g.add_input());
//! let ab = g.and(a, b);
//! let bc = g.and(b, c);
//! let ac = g.and(a, c);
//! let t = g.or(ab, bc);
//! let maj = g.or(t, ac);
//! g.add_output(maj, Some("maj"));
//!
//! let swept = g.sweep();
//! assert!(equiv_exhaustive(&g, &swept)?);
//! # Ok::<(), aig::AigError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aiger;
pub mod analysis;
pub mod blif;
pub mod cut;
mod error;
mod graph;
pub mod incremental;
mod lit;
pub mod par;
pub mod sim;
mod strash;
pub mod tt;

pub use error::AigError;
pub use graph::{Aig, AigStats, NodeKind, Output, TopoIndex};
pub use lit::{Lit, NodeId};

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared fixtures for the crate's unit tests.

    use crate::{Aig, Lit};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// A seeded random strashed AIG with the given shape.
    pub fn random_aig(seed: u64, num_inputs: usize, num_nodes: usize, num_outputs: usize) -> Aig {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut g = Aig::new();
        let mut lits: Vec<Lit> = (0..num_inputs).map(|_| g.add_input()).collect();
        for _ in 0..num_nodes {
            let a = lits[rng.gen_range(0..lits.len())].complement_if(rng.gen());
            let b = lits[rng.gen_range(0..lits.len())].complement_if(rng.gen());
            lits.push(g.and(a, b));
        }
        for _ in 0..num_outputs {
            let l = lits[rng.gen_range(0..lits.len())];
            g.add_output(l.complement_if(rng.gen()), None::<&str>);
        }
        g
    }
}
