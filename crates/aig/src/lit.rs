//! Literals and node identifiers.
//!
//! An AIG literal packs a node index and a complement flag into a single
//! `u32`, mirroring the encoding used by the AIGER format: literal
//! `2 * var + c` refers to node `var`, complemented when `c == 1`.

use std::fmt;

/// Index of a node inside an [`crate::Aig`].
///
/// Node `0` is always the constant-false node.
pub type NodeId = u32;

/// A (possibly complemented) reference to an AIG node.
///
/// The constant literals are [`Lit::FALSE`] (node 0, plain) and
/// [`Lit::TRUE`] (node 0, complemented), matching the AIGER convention
/// where literal `0` is false and literal `1` is true.
///
/// # Examples
///
/// ```
/// use aig::Lit;
///
/// let a = Lit::new(3, false);
/// assert_eq!(a.var(), 3);
/// assert!(!a.is_complement());
/// assert_eq!((!a).var(), 3);
/// assert!((!a).is_complement());
/// assert_eq!(!!a, a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The constant-false literal (AIGER literal `0`).
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal (AIGER literal `1`).
    pub const TRUE: Lit = Lit(1);
    /// Sentinel literal for uninitialized slots (never a valid node
    /// reference); useful for "not yet mapped" markers in rebuild
    /// passes.
    pub const INVALID: Lit = Lit(u32::MAX);

    /// Creates a literal referring to node `var`, complemented if
    /// `complement` is true.
    #[inline]
    pub fn new(var: NodeId, complement: bool) -> Self {
        debug_assert!(var < u32::MAX / 2);
        Lit(var << 1 | complement as u32)
    }

    /// Builds a literal from its raw AIGER encoding (`2 * var + c`).
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        Lit(raw)
    }

    /// Returns the raw AIGER encoding of this literal.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The node this literal refers to.
    #[inline]
    pub fn var(self) -> NodeId {
        self.0 >> 1
    }

    /// Whether the literal is complemented (inverted).
    #[inline]
    pub fn is_complement(self) -> bool {
        self.0 & 1 != 0
    }

    /// Returns the same literal with the complement bit cleared.
    #[inline]
    pub fn regular(self) -> Lit {
        Lit(self.0 & !1)
    }

    /// Returns this literal complemented iff `c` is true.
    #[inline]
    pub fn complement_if(self, c: bool) -> Lit {
        Lit(self.0 ^ c as u32)
    }

    /// Whether this is one of the two constant literals.
    #[inline]
    pub fn is_const(self) -> bool {
        self.var() == 0
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Lit::FALSE {
            write!(f, "0")
        } else if *self == Lit::TRUE {
            write!(f, "1")
        } else if self.is_complement() {
            write!(f, "!n{}", self.var())
        } else {
            write!(f, "n{}", self.var())
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(Lit::FALSE.raw(), 0);
        assert_eq!(Lit::TRUE.raw(), 1);
        assert_eq!(!Lit::FALSE, Lit::TRUE);
        assert!(Lit::FALSE.is_const());
        assert!(Lit::TRUE.is_const());
        assert!(!Lit::new(1, false).is_const());
    }

    #[test]
    fn roundtrip_raw() {
        for raw in 0..100u32 {
            let l = Lit::from_raw(raw);
            assert_eq!(l.raw(), raw);
            assert_eq!(l.var(), raw >> 1);
            assert_eq!(l.is_complement(), raw & 1 == 1);
        }
    }

    #[test]
    fn complement_if_flips_conditionally() {
        let l = Lit::new(5, false);
        assert_eq!(l.complement_if(false), l);
        assert_eq!(l.complement_if(true), !l);
        assert_eq!(l.regular(), l);
        assert_eq!((!l).regular(), l);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Lit::FALSE), "0");
        assert_eq!(format!("{}", Lit::TRUE), "1");
        assert_eq!(format!("{}", Lit::new(4, true)), "!n4");
        assert_eq!(format!("{}", Lit::new(4, false)), "n4");
    }
}
