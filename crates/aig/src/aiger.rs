//! AIGER format reader and writer (ASCII `aag` and binary `aig`).
//!
//! Only combinational AIGs are supported; inputs with latches are
//! rejected with [`AigError::Unsupported`]. Symbol tables (`iN`/`oN`
//! lines) and comments round-trip.
//!
//! Format reference: Biere, "The AIGER And-Inverter Graph (AIG) Format
//! Version 20071012".

use crate::error::AigError;
use crate::graph::Aig;
use crate::lit::Lit;

/// Serializes `aig` in ASCII AIGER (`aag`) format.
///
/// Node ids are compacted: inputs first, then AND nodes in topological
/// order, as required by the format.
///
/// # Examples
///
/// ```
/// use aig::{Aig, aiger};
///
/// let mut g = Aig::new();
/// let a = g.add_input();
/// let b = g.add_input();
/// let f = g.and(a, b);
/// g.add_output(f, Some("f"));
/// let text = aiger::to_ascii(&g);
/// assert!(text.starts_with("aag 3 2 0 1 1"));
/// let back = aiger::from_ascii(&text)?;
/// assert_eq!(back.num_ands(), 1);
/// # Ok::<(), aig::AigError>(())
/// ```
pub fn to_ascii(aig: &Aig) -> String {
    let (map, num_ands) = compact_map(aig);
    let m = aig.num_inputs() + num_ands;
    // One buffer, sized once: every line is appended with the manual
    // decimal formatter, so a 1M-node dump does zero intermediate
    // `format!` allocations.
    let mut out = Vec::with_capacity(
        40 + 9 * (aig.num_inputs() + aig.num_outputs()) + 27 * num_ands + aig.name().len(),
    );
    out.extend_from_slice(b"aag ");
    push_dec(&mut out, m as u32);
    out.push(b' ');
    push_dec(&mut out, aig.num_inputs() as u32);
    out.extend_from_slice(b" 0 ");
    push_dec(&mut out, aig.num_outputs() as u32);
    out.push(b' ');
    push_dec(&mut out, num_ands as u32);
    out.push(b'\n');
    for i in 0..aig.num_inputs() {
        push_dec(&mut out, 2 * (i as u32 + 1));
        out.push(b'\n');
    }
    for o in aig.outputs() {
        push_dec(&mut out, mapped_lit(o.lit, &map));
        out.push(b'\n');
    }
    let (f0s, f1s) = aig.fanin_arrays();
    for id in aig.and_ids() {
        let (f0, f1) = (f0s[id as usize], f1s[id as usize]);
        let lhs = map[id as usize] * 2;
        let (r0, r1) = ordered_rhs(mapped_lit(f0, &map), mapped_lit(f1, &map));
        push_dec(&mut out, lhs);
        out.push(b' ');
        push_dec(&mut out, r0);
        out.push(b' ');
        push_dec(&mut out, r1);
        out.push(b'\n');
    }
    append_symbol_table(&mut out, aig);
    // SAFETY-free guarantee: everything appended is ASCII.
    String::from_utf8(out).expect("AIGER ASCII output is valid UTF-8")
}

/// Serializes `aig` in binary AIGER (`aig`) format.
pub fn to_binary(aig: &Aig) -> Vec<u8> {
    let (map, num_ands) = compact_map(aig);
    let m = aig.num_inputs() + num_ands;
    let mut out = Vec::with_capacity(40 + 9 * aig.num_outputs() + 3 * num_ands + aig.name().len());
    out.extend_from_slice(b"aig ");
    push_dec(&mut out, m as u32);
    out.push(b' ');
    push_dec(&mut out, aig.num_inputs() as u32);
    out.extend_from_slice(b" 0 ");
    push_dec(&mut out, aig.num_outputs() as u32);
    out.push(b' ');
    push_dec(&mut out, num_ands as u32);
    out.push(b'\n');
    for o in aig.outputs() {
        push_dec(&mut out, mapped_lit(o.lit, &map));
        out.push(b'\n');
    }
    let (f0s, f1s) = aig.fanin_arrays();
    for id in aig.and_ids() {
        let (f0, f1) = (f0s[id as usize], f1s[id as usize]);
        let lhs = map[id as usize] * 2;
        let (r0, r1) = ordered_rhs(mapped_lit(f0, &map), mapped_lit(f1, &map));
        // Binary encoding: delta0 = lhs - r0, delta1 = r0 - r1,
        // with r0 >= r1 and lhs > r0.
        push_leb(&mut out, lhs - r0);
        push_leb(&mut out, r0 - r1);
    }
    append_symbol_table(&mut out, aig);
    out
}

/// Parses an ASCII AIGER (`aag`) document.
///
/// # Errors
///
/// [`AigError::ParseAiger`] on malformed input,
/// [`AigError::Unsupported`] if the design contains latches.
pub fn from_ascii(text: &str) -> Result<Aig, AigError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| parse_err(1, "empty input"))?;
    let h = parse_header(header, "aag", 1)?;
    let mut lits: Vec<u32> = Vec::with_capacity(h.i);
    for _ in 0..h.i {
        let (n, line) = lines
            .next()
            .ok_or_else(|| parse_err(0, "truncated input section"))?;
        let v: u32 = line
            .trim()
            .parse()
            .map_err(|_| parse_err(n + 1, "bad input literal"))?;
        lits.push(v);
    }
    let mut out_lits: Vec<u32> = Vec::with_capacity(h.o);
    for _ in 0..h.o {
        let (n, line) = lines
            .next()
            .ok_or_else(|| parse_err(0, "truncated output section"))?;
        let v: u32 = line
            .trim()
            .parse()
            .map_err(|_| parse_err(n + 1, "bad output literal"))?;
        out_lits.push(v);
    }
    let mut ands: Vec<(u32, u32, u32)> = Vec::with_capacity(h.a);
    for _ in 0..h.a {
        let (n, line) = lines
            .next()
            .ok_or_else(|| parse_err(0, "truncated AND section"))?;
        let mut it = line.split_whitespace();
        let mut next = || -> Result<u32, AigError> {
            it.next()
                .ok_or_else(|| parse_err(n + 1, "missing AND field"))?
                .parse()
                .map_err(|_| parse_err(n + 1, "bad AND literal"))
        };
        let lhs = next()?;
        let r0 = next()?;
        let r1 = next()?;
        ands.push((lhs, r0, r1));
    }
    let symbols: Vec<&str> = lines.map(|(_, l)| l).collect();
    build(h, &lits, &out_lits, &ands, &symbols)
}

/// Parses a binary AIGER (`aig`) document.
///
/// # Errors
///
/// [`AigError::ParseAiger`] on malformed input,
/// [`AigError::Unsupported`] if the design contains latches.
pub fn from_binary(bytes: &[u8]) -> Result<Aig, AigError> {
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| parse_err(1, "missing header newline"))?;
    let header = std::str::from_utf8(&bytes[..nl]).map_err(|_| parse_err(1, "non-utf8 header"))?;
    let h = parse_header(header, "aig", 1)?;
    let mut pos = nl + 1;
    // Outputs: one ASCII literal per line.
    let mut out_lits = Vec::with_capacity(h.o);
    for _ in 0..h.o {
        let end = bytes[pos..]
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| parse_err(pos, "truncated outputs"))?;
        let line = std::str::from_utf8(&bytes[pos..pos + end])
            .map_err(|_| parse_err(pos, "non-utf8 output line"))?;
        out_lits.push(
            line.trim()
                .parse::<u32>()
                .map_err(|_| parse_err(pos, "bad output literal"))?,
        );
        pos += end + 1;
    }
    // ANDs: delta coded.
    let mut ands = Vec::with_capacity(h.a);
    for k in 0..h.a {
        let lhs = 2 * (h.i + 1 + k) as u32;
        let d0 = read_leb(bytes, &mut pos)?;
        let d1 = read_leb(bytes, &mut pos)?;
        let r0 = lhs
            .checked_sub(d0)
            .ok_or_else(|| parse_err(pos, "delta0 exceeds lhs"))?;
        let r1 = r0
            .checked_sub(d1)
            .ok_or_else(|| parse_err(pos, "delta1 exceeds rhs0"))?;
        ands.push((lhs, r0, r1));
    }
    let tail =
        std::str::from_utf8(&bytes[pos..]).map_err(|_| parse_err(pos, "non-utf8 symbols"))?;
    let symbols: Vec<&str> = tail.lines().collect();
    // In binary AIGER the inputs are implicit: 2, 4, ..., 2*I.
    let lits: Vec<u32> = (1..=h.i as u32).map(|v| 2 * v).collect();
    build(h, &lits, &out_lits, &ands, &symbols)
}

/// Parses either AIGER flavor based on the magic string.
///
/// # Errors
///
/// See [`from_ascii`] and [`from_binary`].
pub fn from_bytes(bytes: &[u8]) -> Result<Aig, AigError> {
    if bytes.starts_with(b"aag") {
        from_ascii(std::str::from_utf8(bytes).map_err(|_| parse_err(1, "non-utf8 aag file"))?)
    } else if bytes.starts_with(b"aig") {
        from_binary(bytes)
    } else {
        Err(parse_err(1, "unknown magic (expected `aag` or `aig`)"))
    }
}

/// Reads an AIGER file (either flavor).
///
/// # Errors
///
/// I/O errors plus everything [`from_bytes`] reports.
pub fn read_file(path: impl AsRef<std::path::Path>) -> Result<Aig, AigError> {
    from_bytes(&std::fs::read(path)?)
}

/// Writes `aig` to a file; binary if the extension is `.aig`, ASCII
/// otherwise.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_file(aig: &Aig, path: impl AsRef<std::path::Path>) -> Result<(), AigError> {
    let path = path.as_ref();
    let data = if path.extension().is_some_and(|e| e == "aig") {
        to_binary(aig)
    } else {
        to_ascii(aig).into_bytes()
    };
    std::fs::write(path, data)?;
    Ok(())
}

struct Header {
    i: usize,
    o: usize,
    a: usize,
}

fn parse_header(line: &str, magic: &str, lineno: usize) -> Result<Header, AigError> {
    let mut it = line.split_whitespace();
    let tag = it.next().ok_or_else(|| parse_err(lineno, "empty header"))?;
    if tag != magic {
        return Err(parse_err(
            lineno,
            &format!("expected `{magic}` magic, found `{tag}`"),
        ));
    }
    let nums: Vec<usize> = it
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|_| parse_err(lineno, "non-numeric header field"))?;
    if nums.len() != 5 {
        return Err(parse_err(lineno, "header must have 5 fields M I L O A"));
    }
    let (m, i, l, o, a) = (nums[0], nums[1], nums[2], nums[3], nums[4]);
    if l != 0 {
        return Err(AigError::Unsupported(format!(
            "{l} latches (only combinational AIGs are supported)"
        )));
    }
    if m < i + a {
        return Err(parse_err(lineno, "header M < I + A"));
    }
    Ok(Header { i, o, a })
}

fn build(
    h: Header,
    in_lits: &[u32],
    out_lits: &[u32],
    ands: &[(u32, u32, u32)],
    symbols: &[&str],
) -> Result<Aig, AigError> {
    let mut g = Aig::new();
    // The header names the exact shape: reserve the node lanes and
    // the strash table once instead of growing through ~20 rehashes
    // on a 1M-node ingest.
    g.reserve_nodes(1 + h.i + h.a, h.a);
    // var (aiger) -> literal in our graph
    let max_var = h.i + h.a;
    let mut map: Vec<Lit> = vec![Lit::INVALID; max_var + 1];
    map[0] = Lit::FALSE;
    for (k, &l) in in_lits.iter().enumerate() {
        if l % 2 != 0 || l == 0 {
            return Err(parse_err(k + 2, "input literal must be even and nonzero"));
        }
        let v = (l / 2) as usize;
        if v > max_var || map[v] != Lit::INVALID {
            return Err(parse_err(
                k + 2,
                "input variable out of range or duplicated",
            ));
        }
        map[v] = g.add_input();
    }
    for &(lhs, r0, r1) in ands {
        if lhs % 2 != 0 {
            return Err(parse_err(0, "AND lhs must be even"));
        }
        let v = (lhs / 2) as usize;
        if v > max_var || map[v] != Lit::INVALID {
            return Err(parse_err(0, "AND lhs out of range or duplicated"));
        }
        let a = lookup(&map, r0)?;
        let b = lookup(&map, r1)?;
        map[v] = g.and(a, b);
    }
    for &l in out_lits {
        let lit = lookup(&map, l)?;
        g.add_output(lit, None::<&str>);
    }
    // Symbol table + comments. The first comment line is the design
    // name by this module's own convention (see `append_symbol_table`),
    // so a write/read/write cycle is byte-identical, name included.
    let mut out_names: Vec<Option<String>> = vec![None; h.o];
    let mut in_names: Vec<Option<String>> = vec![None; h.i];
    let mut design_name: Option<&str> = None;
    let mut lines = symbols.iter();
    while let Some(&line) = lines.next() {
        if line.starts_with('c') {
            design_name = lines.next().copied().filter(|n| !n.is_empty());
            break;
        }
        if let Some(rest) = line.strip_prefix('i') {
            if let Some((idx, name)) = split_symbol(rest) {
                if idx < h.i {
                    in_names[idx] = Some(name.to_owned());
                }
            }
        } else if let Some(rest) = line.strip_prefix('o') {
            if let Some((idx, name)) = split_symbol(rest) {
                if idx < h.o {
                    out_names[idx] = Some(name.to_owned());
                }
            }
        }
    }
    let mut named = Aig::new();
    // Rebuild names in-place instead: Aig has no rename API for
    // inputs, so rebuild with names when any symbol is present.
    if in_names.iter().any(Option::is_some) {
        let mut map2: Vec<Lit> = vec![Lit::INVALID; g.num_nodes()];
        map2[0] = Lit::FALSE;
        for (idx, &pi) in g.inputs().iter().enumerate() {
            map2[pi as usize] = named.add_named_input(in_names[idx].clone());
        }
        for id in g.and_ids() {
            let [f0, f1] = g.fanins(id);
            let a = map2[f0.var() as usize].complement_if(f0.is_complement());
            let b = map2[f1.var() as usize].complement_if(f1.is_complement());
            map2[id as usize] = named.and(a, b);
        }
        for (k, o) in g.outputs().iter().enumerate() {
            let l = map2[o.lit.var() as usize].complement_if(o.lit.is_complement());
            named.add_output(l, out_names[k].clone());
        }
        if let Some(n) = design_name {
            named.set_name(n);
        }
        return Ok(named);
    }
    for (k, name) in out_names.into_iter().enumerate() {
        if name.is_some() {
            g.rename_output(k, name);
        }
    }
    if let Some(n) = design_name {
        g.set_name(n);
    }
    Ok(g)
}

fn split_symbol(rest: &str) -> Option<(usize, &str)> {
    let mut parts = rest.splitn(2, ' ');
    let idx = parts.next()?.parse().ok()?;
    let name = parts.next()?;
    Some((idx, name))
}

fn lookup(map: &[Lit], aiger_lit: u32) -> Result<Lit, AigError> {
    let v = (aiger_lit / 2) as usize;
    if v >= map.len() || map[v] == Lit::INVALID {
        return Err(parse_err(
            0,
            &format!("literal {aiger_lit} referenced before definition"),
        ));
    }
    Ok(map[v].complement_if(aiger_lit % 2 == 1))
}

fn parse_err(position: usize, msg: &str) -> AigError {
    AigError::ParseAiger {
        position,
        msg: msg.to_owned(),
    }
}

/// Maps internal node ids to compact AIGER variable indices
/// (inputs 1..=I, then ANDs I+1..=I+A in topological order).
fn compact_map(aig: &Aig) -> (Vec<u32>, usize) {
    let mut map = vec![0u32; aig.num_nodes()];
    let mut next = 1u32;
    for &pi in aig.inputs() {
        map[pi as usize] = next;
        next += 1;
    }
    let mut num_ands = 0usize;
    for id in aig.and_ids() {
        map[id as usize] = next;
        next += 1;
        num_ands += 1;
    }
    (map, num_ands)
}

fn mapped_lit(l: Lit, map: &[u32]) -> u32 {
    map[l.var() as usize] * 2 + l.is_complement() as u32
}

/// Binary AIGER requires rhs0 >= rhs1.
fn ordered_rhs(a: u32, b: u32) -> (u32, u32) {
    if a >= b {
        (a, b)
    } else {
        (b, a)
    }
}

fn push_leb(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_leb(bytes: &[u8], pos: &mut usize) -> Result<u32, AigError> {
    let mut v: u32 = 0;
    let mut shift = 0u32;
    loop {
        let b = *bytes
            .get(*pos)
            .ok_or_else(|| parse_err(*pos, "truncated delta encoding"))?;
        *pos += 1;
        v |= u32::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 28 {
            return Err(parse_err(*pos, "delta encoding too long"));
        }
    }
}

/// Appends `v` in decimal (no `format!` temporaries on the hot dump
/// loops).
fn push_dec(out: &mut Vec<u8>, mut v: u32) {
    let mut buf = [0u8; 10];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.extend_from_slice(&buf[i..]);
}

fn append_symbol_table(out: &mut Vec<u8>, aig: &Aig) {
    for i in 0..aig.num_inputs() {
        if let Some(name) = aig.input_name(i) {
            out.push(b'i');
            push_dec(out, i as u32);
            out.push(b' ');
            out.extend_from_slice(name.as_bytes());
            out.push(b'\n');
        }
    }
    for (i, o) in aig.outputs().iter().enumerate() {
        if let Some(name) = &o.name {
            out.push(b'o');
            push_dec(out, i as u32);
            out.push(b' ');
            out.extend_from_slice(name.as_bytes());
            out.push(b'\n');
        }
    }
    if !aig.name().is_empty() {
        out.extend_from_slice(b"c\n");
        out.extend_from_slice(aig.name().as_bytes());
        out.push(b'\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::equiv_exhaustive;

    fn sample() -> Aig {
        let mut g = Aig::new();
        let a = g.add_named_input(Some("a"));
        let b = g.add_named_input(Some("b"));
        let c = g.add_input();
        let x = g.xor(a, b);
        let f = g.mux(c, x, a);
        g.add_output(f, Some("f"));
        g.add_output(x, None::<&str>);
        g
    }

    #[test]
    fn ascii_roundtrip() {
        let g = sample();
        let text = to_ascii(&g);
        let back = from_ascii(&text).expect("well-formed");
        assert!(equiv_exhaustive(&g, &back).expect("small"));
        assert_eq!(back.input_name(0), Some("a"));
        assert_eq!(back.outputs()[0].name.as_deref(), Some("f"));
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let bytes = to_binary(&g);
        let back = from_binary(&bytes).expect("well-formed");
        assert!(equiv_exhaustive(&g, &back).expect("small"));
    }

    #[test]
    fn autodetect() {
        let g = sample();
        assert!(from_bytes(to_ascii(&g).as_bytes()).is_ok());
        assert!(from_bytes(&to_binary(&g)).is_ok());
        assert!(from_bytes(b"wat 1 2 3").is_err());
    }

    #[test]
    fn constant_output() {
        let mut g = Aig::with_inputs(1);
        g.add_output(Lit::TRUE, None::<&str>);
        g.add_output(Lit::FALSE, None::<&str>);
        let back = from_ascii(&to_ascii(&g)).expect("ok");
        assert!(equiv_exhaustive(&g, &back).expect("tiny"));
    }

    #[test]
    fn rejects_latches() {
        assert!(matches!(
            from_ascii("aag 1 0 1 0 0\n2 3\n"),
            Err(AigError::Unsupported(_))
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_ascii("").is_err());
        assert!(from_ascii("aag x y z").is_err());
        assert!(from_ascii("aag 1 1 0 0 1\n2\n").is_err()); // M < I+A
    }

    #[test]
    fn file_roundtrip() {
        let g = sample();
        let dir = std::env::temp_dir();
        let p_aag = dir.join("aig_timing_test.aag");
        let p_aig = dir.join("aig_timing_test.aig");
        write_file(&g, &p_aag).expect("write aag");
        write_file(&g, &p_aig).expect("write aig");
        let b1 = read_file(&p_aag).expect("read aag");
        let b2 = read_file(&p_aig).expect("read aig");
        assert!(equiv_exhaustive(&b1, &b2).expect("small"));
        let _ = std::fs::remove_file(p_aag);
        let _ = std::fs::remove_file(p_aig);
    }

    #[test]
    fn forward_reference_rejected() {
        // AND referencing an undefined variable.
        let text = "aag 3 1 0 1 2\n2\n4\n4 6 2\n6 2 2\n";
        assert!(from_ascii(text).is_err());
    }
}
