//! Truth-table arithmetic for small Boolean functions.
//!
//! [`Tt`] stores a function of up to 16 variables as a bit vector of
//! `2^n` minterms. It backs cut functions in the technology mapper,
//! resynthesis in the rewriting engine ([`isop`]), and NPN-canonical
//! Boolean matching ([`npn4_canon`]).

use std::fmt;

/// A truth table over `num_vars()` variables (at most 16).
///
/// Bit `m` holds `f(x)` for the minterm where variable `i` takes the
/// value of bit `i` of `m`. Unused high bits of the last word are kept
/// at zero as an invariant.
///
/// # Examples
///
/// ```
/// use aig::tt::Tt;
///
/// let a = Tt::var(2, 0);
/// let b = Tt::var(2, 1);
/// let f = a.and(&b);
/// assert_eq!(f.count_ones(), 1);
/// assert!(f.get_bit(0b11));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tt {
    nv: usize,
    w: Vec<u64>,
}

/// Maximum number of variables supported by [`Tt`].
pub const MAX_VARS: usize = 16;

fn words_for(nv: usize) -> usize {
    if nv >= 6 {
        1 << (nv - 6)
    } else {
        1
    }
}

fn last_mask(nv: usize) -> u64 {
    if nv >= 6 {
        u64::MAX
    } else {
        (1u64 << (1 << nv)) - 1
    }
}

impl Tt {
    /// The constant-false function of `nv` variables.
    ///
    /// # Panics
    ///
    /// Panics if `nv > 16`.
    pub fn zero(nv: usize) -> Self {
        assert!(nv <= MAX_VARS, "truth table limited to {MAX_VARS} vars");
        Tt {
            nv,
            w: vec![0; words_for(nv)],
        }
    }

    /// The constant-true function of `nv` variables.
    pub fn ones(nv: usize) -> Self {
        let mut t = Tt::zero(nv);
        for w in &mut t.w {
            *w = u64::MAX;
        }
        t.mask();
        t
    }

    /// The projection function `f(x) = x_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nv` or `nv > 16`.
    pub fn var(nv: usize, i: usize) -> Self {
        assert!(i < nv, "variable {i} out of range for {nv} vars");
        let mut t = Tt::zero(nv);
        if i >= 6 {
            let stride = 1usize << (i - 6);
            let mut idx = 0;
            while idx < t.w.len() {
                for j in 0..stride {
                    t.w[idx + stride + j] = u64::MAX;
                }
                idx += 2 * stride;
            }
        } else {
            const PATTERNS: [u64; 6] = [
                0xAAAA_AAAA_AAAA_AAAA,
                0xCCCC_CCCC_CCCC_CCCC,
                0xF0F0_F0F0_F0F0_F0F0,
                0xFF00_FF00_FF00_FF00,
                0xFFFF_0000_FFFF_0000,
                0xFFFF_FFFF_0000_0000,
            ];
            for w in &mut t.w {
                *w = PATTERNS[i];
            }
        }
        t.mask();
        t
    }

    /// Builds a table of `nv <= 6` variables from the low `2^nv` bits
    /// of `bits`.
    pub fn from_u64(nv: usize, bits: u64) -> Self {
        assert!(nv <= 6);
        let mut t = Tt::zero(nv);
        t.w[0] = bits;
        t.mask();
        t
    }

    /// The low word of the table; exact encoding for `nv <= 6`.
    pub fn as_u64(&self) -> u64 {
        self.w[0]
    }

    /// Raw words of the table.
    pub fn words(&self) -> &[u64] {
        &self.w
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.nv
    }

    /// Number of minterms (bits) in the table.
    pub fn num_bits(&self) -> usize {
        1 << self.nv
    }

    fn mask(&mut self) {
        let m = last_mask(self.nv);
        if let Some(last) = self.w.last_mut() {
            *last &= m;
        }
    }

    /// Value of the function on minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= 2^nv`.
    #[inline]
    pub fn get_bit(&self, m: usize) -> bool {
        assert!(m < self.num_bits());
        self.w[m >> 6] >> (m & 63) & 1 == 1
    }

    /// Sets the value of the function on minterm `m`.
    #[inline]
    pub fn set_bit(&mut self, m: usize, v: bool) {
        assert!(m < self.num_bits());
        if v {
            self.w[m >> 6] |= 1 << (m & 63);
        } else {
            self.w[m >> 6] &= !(1 << (m & 63));
        }
    }

    /// Number of satisfying minterms.
    pub fn count_ones(&self) -> u32 {
        self.w.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether the function is constant false.
    pub fn is_zero(&self) -> bool {
        self.w.iter().all(|&w| w == 0)
    }

    /// Whether the function is constant true.
    pub fn is_ones(&self) -> bool {
        let m = last_mask(self.nv);
        let n = self.w.len();
        self.w[..n - 1].iter().all(|&w| w == u64::MAX) && self.w[n - 1] == m
    }

    fn zip(&self, other: &Tt, f: impl Fn(u64, u64) -> u64) -> Tt {
        assert_eq!(self.nv, other.nv, "truth tables must have equal arity");
        let mut t = Tt {
            nv: self.nv,
            w: self
                .w
                .iter()
                .zip(&other.w)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        };
        t.mask();
        t
    }

    /// Bitwise AND of two functions of equal arity.
    ///
    /// # Panics
    ///
    /// Panics if arities differ.
    pub fn and(&self, other: &Tt) -> Tt {
        self.zip(other, |a, b| a & b)
    }

    /// Bitwise OR of two functions of equal arity.
    pub fn or(&self, other: &Tt) -> Tt {
        self.zip(other, |a, b| a | b)
    }

    /// Bitwise XOR of two functions of equal arity.
    pub fn xor(&self, other: &Tt) -> Tt {
        self.zip(other, |a, b| a ^ b)
    }

    /// Complement of the function.
    pub fn not(&self) -> Tt {
        let mut t = Tt {
            nv: self.nv,
            w: self.w.iter().map(|&a| !a).collect(),
        };
        t.mask();
        t
    }

    /// `self & !other`.
    pub fn and_not(&self, other: &Tt) -> Tt {
        self.zip(other, |a, b| a & !b)
    }

    /// Whether `self` implies `other` (`self & !other == 0`).
    pub fn implies(&self, other: &Tt) -> bool {
        self.w.iter().zip(&other.w).all(|(&a, &b)| a & !b == 0)
    }

    /// Negative cofactor with respect to variable `i` (`x_i = 0`),
    /// duplicated so the result remains a function of `nv` variables.
    pub fn cofactor0(&self, i: usize) -> Tt {
        self.cofactor(i, false)
    }

    /// Positive cofactor with respect to variable `i` (`x_i = 1`).
    pub fn cofactor1(&self, i: usize) -> Tt {
        self.cofactor(i, true)
    }

    fn cofactor(&self, i: usize, positive: bool) -> Tt {
        assert!(i < self.nv);
        let mut t = self.clone();
        if i >= 6 {
            let stride = 1usize << (i - 6);
            let mut idx = 0;
            while idx < t.w.len() {
                for j in 0..stride {
                    let (src, dst) = if positive {
                        (idx + stride + j, idx + j)
                    } else {
                        (idx + j, idx + stride + j)
                    };
                    t.w[dst] = t.w[src];
                }
                idx += 2 * stride;
            }
        } else {
            let shift = 1u32 << i;
            let keep = match i {
                0 => 0x5555_5555_5555_5555u64,
                1 => 0x3333_3333_3333_3333,
                2 => 0x0F0F_0F0F_0F0F_0F0F,
                3 => 0x00FF_00FF_00FF_00FF,
                4 => 0x0000_FFFF_0000_FFFF,
                _ => 0x0000_0000_FFFF_FFFF,
            };
            for w in &mut t.w {
                let sel = if positive {
                    (*w >> shift) & keep
                } else {
                    *w & keep
                };
                *w = sel | (sel << shift);
            }
        }
        t.mask();
        t
    }

    /// Whether the function actually depends on variable `i`.
    pub fn depends_on(&self, i: usize) -> bool {
        self.cofactor0(i) != self.cofactor1(i)
    }

    /// The set of variables the function depends on.
    pub fn support(&self) -> Vec<usize> {
        (0..self.nv).filter(|&i| self.depends_on(i)).collect()
    }
}

impl fmt::Debug for Tt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tt({}v:", self.nv)?;
        for w in self.w.iter().rev() {
            write!(f, "{w:016x}")?;
        }
        write!(f, ")")
    }
}

/// A product term (cube) over at most 32 variables.
///
/// Bit `i` of `pos` means literal `x_i`, bit `i` of `neg` means
/// `!x_i`; a variable absent from both masks is a don't-care.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Cube {
    /// Positive-literal mask.
    pub pos: u32,
    /// Negative-literal mask.
    pub neg: u32,
}

impl Cube {
    /// The universal cube (no literals; constant true).
    pub const TAUTOLOGY: Cube = Cube { pos: 0, neg: 0 };

    /// Number of literals in the cube.
    pub fn num_lits(self) -> u32 {
        self.pos.count_ones() + self.neg.count_ones()
    }

    /// Evaluates the cube on a minterm.
    pub fn eval(self, minterm: u32) -> bool {
        (minterm & self.pos) == self.pos && (minterm & self.neg) == 0
    }

    /// Truth table of the cube over `nv` variables.
    pub fn to_tt(self, nv: usize) -> Tt {
        let mut t = Tt::ones(nv);
        for i in 0..nv {
            if self.pos >> i & 1 == 1 {
                t = t.and(&Tt::var(nv, i));
            } else if self.neg >> i & 1 == 1 {
                t = t.and(&Tt::var(nv, i).not());
            }
        }
        t
    }
}

/// Computes an irredundant sum-of-products cover of `f` using the
/// Minato–Morreale ISOP algorithm.
///
/// The returned cubes cover exactly `f` (verified by the unit tests
/// for every 4-variable function class we exercise).
///
/// # Examples
///
/// ```
/// use aig::tt::{isop, Tt};
///
/// let f = Tt::var(3, 0).and(&Tt::var(3, 1)).or(&Tt::var(3, 2));
/// let cover = isop(&f);
/// assert!(!cover.is_empty());
/// let mut acc = Tt::zero(3);
/// for c in &cover {
///     acc = acc.or(&c.to_tt(3));
/// }
/// assert_eq!(acc, f);
/// ```
pub fn isop(f: &Tt) -> Vec<Cube> {
    assert!(f.num_vars() <= 32);
    let mut cover = Vec::new();
    isop_rec(f, f, f.num_vars(), &mut cover);
    cover
}

/// Minato-Morreale on the interval [lower, upper]; returns the tt of
/// the generated cover.
fn isop_rec(lower: &Tt, upper: &Tt, nv_active: usize, cover: &mut Vec<Cube>) -> Tt {
    debug_assert!(lower.implies(upper));
    if lower.is_zero() {
        return Tt::zero(lower.num_vars());
    }
    if upper.is_ones() {
        cover.push(Cube::TAUTOLOGY);
        return Tt::ones(lower.num_vars());
    }
    // Pick the top active variable that the interval depends on.
    let mut var = None;
    for i in (0..nv_active).rev() {
        if lower.depends_on(i) || upper.depends_on(i) {
            var = Some(i);
            break;
        }
    }
    let v = match var {
        Some(v) => v,
        None => {
            // Interval is constant over remaining vars; lower != 0,
            // so emit the tautology restricted to chosen literals.
            cover.push(Cube::TAUTOLOGY);
            return Tt::ones(lower.num_vars());
        }
    };
    let l0 = lower.cofactor0(v);
    let l1 = lower.cofactor1(v);
    let u0 = upper.cofactor0(v);
    let u1 = upper.cofactor1(v);

    // Cubes that must contain literal !x_v.
    let start0 = cover.len();
    let c0 = isop_rec(&l0.and_not(&u1), &u0, v, cover);
    for c in &mut cover[start0..] {
        c.neg |= 1 << v;
    }
    // Cubes that must contain literal x_v.
    let start1 = cover.len();
    let c1 = isop_rec(&l1.and_not(&u0), &u1, v, cover);
    for c in &mut cover[start1..] {
        c.pos |= 1 << v;
    }
    // Remainder independent of x_v.
    let lr0 = l0.and_not(&c0);
    let lr1 = l1.and_not(&c1);
    let lr = lr0.or(&lr1);
    let ur = u0.and(&u1);
    let cr = isop_rec(&lr, &ur, v, cover);

    let xv = Tt::var(lower.num_vars(), v);
    let part0 = c0.and(&xv.not());
    let part1 = c1.and(&xv);
    part0.or(&part1).or(&cr)
}

/// An NPN transform: a permutation of four inputs, an input-complement
/// mask, and an output complement.
///
/// [`apply_npn4`] defines the semantics: the transformed function `g`
/// satisfies `g(x) = f(y) ^ out`, where `y[perm[j]] = x[j] ^ (compl >> j & 1)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Npn4 {
    /// `perm[j]` is the original input driven by new input `j`.
    pub perm: [u8; 4],
    /// Bit `j` complements new input `j`.
    pub input_compl: u8,
    /// Whether the output is complemented.
    pub output_compl: bool,
}

impl Npn4 {
    /// The identity transform.
    pub const IDENTITY: Npn4 = Npn4 {
        perm: [0, 1, 2, 3],
        input_compl: 0,
        output_compl: false,
    };
}

/// All 24 permutations of `[0, 1, 2, 3]`.
pub const PERM4: [[u8; 4]; 24] = [
    [0, 1, 2, 3],
    [0, 1, 3, 2],
    [0, 2, 1, 3],
    [0, 2, 3, 1],
    [0, 3, 1, 2],
    [0, 3, 2, 1],
    [1, 0, 2, 3],
    [1, 0, 3, 2],
    [1, 2, 0, 3],
    [1, 2, 3, 0],
    [1, 3, 0, 2],
    [1, 3, 2, 0],
    [2, 0, 1, 3],
    [2, 0, 3, 1],
    [2, 1, 0, 3],
    [2, 1, 3, 0],
    [2, 3, 0, 1],
    [2, 3, 1, 0],
    [3, 0, 1, 2],
    [3, 0, 2, 1],
    [3, 1, 0, 2],
    [3, 1, 2, 0],
    [3, 2, 0, 1],
    [3, 2, 1, 0],
];

/// Applies an NPN transform to a 4-variable truth table.
///
/// Returns `g` with `g(x) = f(y) ^ out`, `y[perm[j]] = x[j] ^ c_j`.
pub fn apply_npn4(f: u16, t: Npn4) -> u16 {
    let mut g = 0u16;
    for m in 0..16u16 {
        let mut y = 0u16;
        for j in 0..4 {
            let xj = (m >> j) & 1;
            let yj = xj ^ u16::from(t.input_compl >> j & 1);
            y |= yj << t.perm[j];
        }
        let bit = (f >> y) & 1;
        let bit = bit ^ u16::from(t.output_compl);
        g |= bit << m;
    }
    g
}

/// Computes the NPN-canonical representative of a 4-variable function
/// and a transform `t` such that `apply_npn4(f, t) == canon`.
///
/// Exhaustive over all 768 transforms; adequate for library
/// preprocessing and cache keys (called once per distinct function).
pub fn npn4_canon(f: u16) -> (u16, Npn4) {
    let mut best = u16::MAX;
    let mut best_t = Npn4::IDENTITY;
    for &perm in &PERM4 {
        for compl in 0..16u8 {
            for out in [false, true] {
                let t = Npn4 {
                    perm,
                    input_compl: compl,
                    output_compl: out,
                };
                let g = apply_npn4(f, t);
                if g < best {
                    best = g;
                    best_t = t;
                }
            }
        }
    }
    (best, best_t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_patterns() {
        let a = Tt::var(4, 0);
        assert_eq!(a.as_u64() & 0xFFFF, 0xAAAA);
        let d = Tt::var(4, 3);
        assert_eq!(d.as_u64() & 0xFFFF, 0xFF00);
    }

    #[test]
    fn large_var_pattern() {
        let t = Tt::var(8, 7);
        assert_eq!(t.words().len(), 4);
        assert_eq!(t.words()[0], 0);
        assert_eq!(t.words()[1], 0);
        assert_eq!(t.words()[2], u64::MAX);
        assert_eq!(t.words()[3], u64::MAX);
    }

    #[test]
    fn small_arity_masking() {
        let a = Tt::var(1, 0);
        assert_eq!(a.as_u64(), 0b10);
        assert!(Tt::ones(1).as_u64() == 0b11);
        assert!(Tt::ones(0).as_u64() == 0b1);
    }

    #[test]
    fn boolean_ops() {
        let a = Tt::var(3, 0);
        let b = Tt::var(3, 1);
        let f = a.and(&b);
        assert_eq!(f.count_ones(), 2);
        assert_eq!(a.or(&b).count_ones(), 6);
        assert_eq!(a.xor(&a), Tt::zero(3));
        assert!(a.and(&a.not()).is_zero());
        assert!(a.or(&a.not()).is_ones());
    }

    #[test]
    fn cofactors() {
        let a = Tt::var(3, 0);
        let b = Tt::var(3, 1);
        let f = a.and(&b); // x0 & x1
        assert_eq!(f.cofactor1(0), b);
        assert!(f.cofactor0(0).is_zero());
        assert!(f.depends_on(0));
        assert!(f.depends_on(1));
        assert!(!f.depends_on(2));
        assert_eq!(f.support(), vec![0, 1]);
    }

    #[test]
    fn cofactor_high_var() {
        let f = Tt::var(8, 7).and(&Tt::var(8, 0));
        assert_eq!(f.cofactor1(7), Tt::var(8, 0));
        assert!(f.cofactor0(7).is_zero());
    }

    fn cover_tt(cover: &[Cube], nv: usize) -> Tt {
        let mut acc = Tt::zero(nv);
        for c in cover {
            acc = acc.or(&c.to_tt(nv));
        }
        acc
    }

    #[test]
    fn isop_exact_small() {
        // Exhaustive over all 256 3-variable functions.
        for bits in 0..256u64 {
            let f = Tt::from_u64(3, bits);
            let cover = isop(&f);
            assert_eq!(cover_tt(&cover, 3), f, "function {bits:02x}");
        }
    }

    #[test]
    fn isop_exact_sampled_4var() {
        let mut x = 0x2545_F491u64;
        for _ in 0..500 {
            // xorshift
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let f = Tt::from_u64(4, x & 0xFFFF);
            let cover = isop(&f);
            assert_eq!(cover_tt(&cover, 4), f);
        }
    }

    #[test]
    fn isop_larger_arity() {
        let f = Tt::var(7, 6)
            .and(&Tt::var(7, 0))
            .or(&Tt::var(7, 3).xor(&Tt::var(7, 5)));
        let cover = isop(&f);
        assert_eq!(cover_tt(&cover, 7), f);
    }

    #[test]
    fn npn_canon_is_invariant() {
        // All functions in the same NPN class canonicalize identically.
        let f: u16 = 0xCA; // some function
        let (canon, _) = npn4_canon(f);
        for &perm in &PERM4[..6] {
            for compl in [0u8, 3, 9] {
                let t = Npn4 {
                    perm,
                    input_compl: compl,
                    output_compl: false,
                };
                let g = apply_npn4(f, t);
                let (canon_g, _) = npn4_canon(g);
                assert_eq!(canon, canon_g);
            }
        }
    }

    #[test]
    fn npn_transform_witness() {
        for f in [0x8000u16, 0x6996, 0xCACA, 0x1234, 0xFEED] {
            let (canon, t) = npn4_canon(f);
            assert_eq!(apply_npn4(f, t), canon);
        }
    }

    #[test]
    fn apply_npn4_identity() {
        for f in [0u16, 0xFFFF, 0xAAAA, 0x1234] {
            assert_eq!(apply_npn4(f, Npn4::IDENTITY), f);
        }
    }

    #[test]
    fn cube_eval_and_tt() {
        let c = Cube {
            pos: 0b01,
            neg: 0b10,
        }; // x0 & !x1
        assert!(c.eval(0b01));
        assert!(!c.eval(0b11));
        assert!(!c.eval(0b00));
        let t = c.to_tt(2);
        assert_eq!(t.count_ones(), 1);
        assert!(t.get_bit(0b01));
        assert_eq!(c.num_lits(), 2);
    }
}
