//! Open-addressing structural-hash table.
//!
//! Maps the packed fanin pair of an AND node — `(lo.raw() as u64) <<
//! 32 | hi.raw() as u64` with `lo.raw() <= hi.raw()` — to the node id
//! owning that pair. This replaces the former
//! `HashMap<(u32, u32), NodeId>`: a flat power-of-two slot array
//! (8-byte key + 4-byte value per slot), Fibonacci hashing, linear
//! probing with backward-shift deletion, so
//!
//! * lookups in the [`crate::Aig::and`] hot loop touch one contiguous
//!   cache line instead of chasing SwissTable groups,
//! * [`StrashTable::clone_from`] is a flat `memcpy` of the slot
//!   arrays — no rehash — which is what makes speculation-slot full
//!   resyncs cheap on large designs, and
//! * capacity can be reserved up front ([`StrashTable::reserve`]) so
//!   a known-size build never grows incrementally.
//!
//! The empty-slot sentinel is `u64::MAX`: a real key would need
//! `hi.raw() == u32::MAX`, i.e. a fanin of `Lit::INVALID`, which AND
//! nodes never carry.
//!
//! Deletions backward-shift the probe chain instead of leaving
//! tombstones, so the table's probe lengths — and therefore the exact
//! sequence of states across an edit journal's apply/undo pairs — are
//! canonical for the key set: rolling a transaction back restores the
//! table byte for byte.

use crate::lit::NodeId;

const EMPTY: u64 = u64::MAX;
/// Fibonacci multiplier (2^64 / phi), spreads packed pairs well even
/// though the low 32 bits (the high fanin) vary slowly.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;
/// Grow when `len * 8 >= capacity * 7` (7/8 max load).
const MAX_LOAD_NUM: usize = 7;
const MAX_LOAD_DEN: usize = 8;
const MIN_CAP: usize = 16;

/// Open-addressing `packed fanin pair -> NodeId` map (see module docs).
#[derive(Debug)]
pub(crate) struct StrashTable {
    /// Packed keys, `EMPTY` marking free slots. Length is zero or a
    /// power of two; `vals` always has the same length.
    keys: Vec<u64>,
    vals: Vec<NodeId>,
    len: usize,
    /// `64 - log2(capacity)`; hashing is `(key * FIB) >> shift`.
    shift: u32,
}

impl Default for StrashTable {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for StrashTable {
    fn clone(&self) -> Self {
        StrashTable {
            keys: self.keys.clone(),
            vals: self.vals.clone(),
            len: self.len,
            shift: self.shift,
        }
    }

    /// Flat slot-array copy into the existing allocations — the
    /// rebuild-free resync path. No rehashing: the probe layout is a
    /// pure function of the source's key set and capacity.
    fn clone_from(&mut self, src: &Self) {
        self.keys.clone_from(&src.keys);
        self.vals.clone_from(&src.vals);
        self.len = src.len;
        self.shift = src.shift;
    }
}

impl StrashTable {
    /// An empty table; allocates on first insert (or [`Self::reserve`]).
    pub(crate) fn new() -> Self {
        StrashTable {
            keys: Vec::new(),
            vals: Vec::new(),
            len: 0,
            shift: 64,
        }
    }

    /// Number of entries.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Bytes held by the slot arrays (capacity accounting for the
    /// `node_storage_bytes` series).
    pub(crate) fn storage_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<u64>()
            + self.vals.capacity() * std::mem::size_of::<NodeId>()
    }

    #[inline]
    fn ideal_slot(&self, key: u64) -> usize {
        // shift == 64 only while the table is empty, and every probe
        // path checks for that first.
        (key.wrapping_mul(FIB) >> self.shift) as usize
    }

    /// Ensures capacity for `total` entries without exceeding the max
    /// load factor (no incremental growth up to that size).
    pub(crate) fn reserve(&mut self, total: usize) {
        let needed = (total * MAX_LOAD_DEN).div_ceil(MAX_LOAD_NUM) + 1;
        if needed > self.keys.len() {
            self.rehash(needed.next_power_of_two().max(MIN_CAP));
        }
    }

    fn rehash(&mut self, new_cap: usize) {
        debug_assert!(new_cap.is_power_of_two() && new_cap > self.len);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_vals = std::mem::take(&mut self.vals);
        self.vals.resize(new_cap, 0);
        self.shift = 64 - new_cap.trailing_zeros();
        for (i, &key) in old_keys.iter().enumerate() {
            if key == EMPTY {
                continue;
            }
            let mask = new_cap - 1;
            let mut slot = self.ideal_slot(key);
            while self.keys[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            self.keys[slot] = key;
            self.vals[slot] = old_vals[i];
        }
    }

    /// The id owning `key`, if present.
    #[inline]
    pub(crate) fn get(&self, key: u64) -> Option<NodeId> {
        if self.len == 0 {
            return None;
        }
        let mask = self.keys.len() - 1;
        let mut slot = self.ideal_slot(key);
        loop {
            let k = self.keys[slot];
            if k == key {
                return Some(self.vals[slot]);
            }
            if k == EMPTY {
                return None;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Inserts a key known to be absent (fresh node registration and
    /// journal-undo re-insertion).
    pub(crate) fn insert(&mut self, key: u64, id: NodeId) {
        let inserted = self.try_insert(key, id);
        debug_assert!(inserted, "strash insert of an already-present key");
    }

    /// Registers `id` under `key` unless the key is already owned;
    /// returns whether the insertion happened (the
    /// `entry().or_insert_with()` shape `replace_fanins` journals).
    pub(crate) fn try_insert(&mut self, key: u64, id: NodeId) -> bool {
        debug_assert_ne!(key, EMPTY, "Lit::INVALID fanin reached the strash");
        if (self.len + 1) * MAX_LOAD_DEN > self.keys.len() * MAX_LOAD_NUM {
            self.rehash((self.keys.len() * 2).max(MIN_CAP));
        }
        let mask = self.keys.len() - 1;
        let mut slot = self.ideal_slot(key);
        loop {
            let k = self.keys[slot];
            if k == key {
                return false;
            }
            if k == EMPTY {
                self.keys[slot] = key;
                self.vals[slot] = id;
                self.len += 1;
                return true;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Removes `key`, returning its value. Backward-shift deletion:
    /// later entries of the probe chain slide into the hole, so no
    /// tombstones accumulate and the layout stays canonical for the
    /// key set (exact journal undo relies on this).
    pub(crate) fn remove(&mut self, key: u64) -> Option<NodeId> {
        if self.len == 0 {
            return None;
        }
        let mask = self.keys.len() - 1;
        let mut slot = self.ideal_slot(key);
        loop {
            let k = self.keys[slot];
            if k == EMPTY {
                return None;
            }
            if k == key {
                break;
            }
            slot = (slot + 1) & mask;
        }
        let removed = self.vals[slot];
        let mut hole = slot;
        let mut probe = slot;
        loop {
            probe = (probe + 1) & mask;
            let k = self.keys[probe];
            if k == EMPTY {
                break;
            }
            let home = self.ideal_slot(k);
            // Shift back iff the entry's home does not lie strictly
            // between the hole and its current slot (cyclically) —
            // i.e. moving it to the hole keeps it reachable.
            if (probe.wrapping_sub(home) & mask) >= (probe.wrapping_sub(hole) & mask) {
                self.keys[hole] = k;
                self.vals[hole] = self.vals[probe];
                hole = probe;
            }
        }
        self.keys[hole] = EMPTY;
        self.len -= 1;
        Some(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = StrashTable::new();
        assert_eq!(t.get(42), None);
        assert_eq!(t.remove(42), None);
        t.insert(42, 7);
        assert_eq!(t.get(42), Some(7));
        assert_eq!(t.len(), 1);
        assert!(!t.try_insert(42, 9), "occupied key must not be replaced");
        assert_eq!(t.get(42), Some(7));
        assert_eq!(t.remove(42), Some(7));
        assert_eq!(t.get(42), None);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn reserve_prevents_growth() {
        let mut t = StrashTable::new();
        t.reserve(1000);
        let cap = t.keys.len();
        for i in 0..1000u64 {
            t.insert(i.wrapping_mul(0x1234_5678_9abc_def1), i as NodeId);
        }
        assert_eq!(t.keys.len(), cap, "reserved table must not regrow");
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn clone_from_is_exact() {
        let mut src = StrashTable::new();
        for i in 0..300u64 {
            src.insert(i * 3 + 1, i as NodeId);
        }
        let mut dst = StrashTable::new();
        dst.insert(9999, 1); // pre-existing garbage must vanish
        dst.clone_from(&src);
        assert_eq!(dst.len(), src.len());
        assert_eq!(dst.keys, src.keys);
        assert_eq!(dst.vals, src.vals);
        for i in 0..300u64 {
            assert_eq!(dst.get(i * 3 + 1), Some(i as NodeId));
        }
        assert_eq!(dst.get(9999), None);
    }

    /// Random interleaved insert/remove against a HashMap oracle, with
    /// clustered keys to stress probe chains and backward shifting.
    #[test]
    fn differential_against_hashmap() {
        let mut rng = SmallRng::seed_from_u64(0xD1FF);
        let mut t = StrashTable::new();
        let mut oracle: HashMap<u64, NodeId> = HashMap::new();
        for step in 0..20_000u32 {
            // Small key space (clusters) so removes hit often and
            // chains overlap.
            let key = rng.gen_range(0..512u64) * 0x9E37 + rng.gen_range(0..3u64);
            if rng.gen_bool(0.6) {
                let inserted = t.try_insert(key, step);
                assert_eq!(inserted, !oracle.contains_key(&key), "step {step}");
                oracle.entry(key).or_insert(step);
            } else {
                assert_eq!(t.remove(key), oracle.remove(&key), "step {step}");
            }
            if step % 1024 == 0 {
                assert_eq!(t.len(), oracle.len());
                for (&k, &v) in &oracle {
                    assert_eq!(t.get(k), Some(v));
                }
            }
        }
        assert_eq!(t.len(), oracle.len());
        for (&k, &v) in &oracle {
            assert_eq!(t.get(k), Some(v));
        }
    }
}
