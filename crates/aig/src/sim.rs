//! Bit-parallel simulation and (semi-)formal equivalence checking.
//!
//! Simulation is used three ways in this project: sanity-checking that
//! logic transformations preserve function, validating cut truth
//! tables, and verifying that the technology mapper's gate-level
//! netlist implements the same Boolean function as the source AIG.

use crate::error::AigError;
use crate::graph::Aig;
use crate::lit::{Lit, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Bit-parallel simulation values for every node of an [`Aig`].
///
/// Each node holds `words` 64-bit lanes; bit `m` of the row is the
/// node's value under input pattern `m`.
#[derive(Clone, Debug)]
pub struct SimTable {
    words: usize,
    valid_bits: usize,
    data: Vec<u64>,
}

impl SimTable {
    /// Simulates `aig` on `words * 64` uniformly random input patterns.
    pub fn random(aig: &Aig, words: usize, seed: u64) -> SimTable {
        assert!(words > 0, "need at least one simulation word");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut t = SimTable {
            words,
            valid_bits: words * 64,
            data: vec![0u64; aig.num_nodes() * words],
        };
        for &pi in aig.inputs() {
            let row = t.row_mut(pi);
            for w in row {
                *w = rng.gen();
            }
        }
        t.propagate(aig);
        t
    }

    /// Simulates `aig` exhaustively on all `2^n` input patterns.
    ///
    /// # Errors
    ///
    /// Returns [`AigError::TooManyInputs`] when the AIG has more than
    /// 16 inputs (65536 patterns is the supported exhaustive limit).
    pub fn exhaustive(aig: &Aig) -> Result<SimTable, AigError> {
        let n = aig.num_inputs();
        if n > 16 {
            return Err(AigError::TooManyInputs { inputs: n, max: 16 });
        }
        let bits = 1usize << n;
        let words = bits.div_ceil(64);
        let mut t = SimTable {
            words,
            valid_bits: bits,
            data: vec![0u64; aig.num_nodes() * words],
        };
        let inputs: Vec<NodeId> = aig.inputs().to_vec();
        for (i, &pi) in inputs.iter().enumerate() {
            let row = t.row_mut(pi);
            if i >= 6 {
                let stride = 1usize << (i - 6);
                let mut idx = 0;
                while idx + stride <= row.len() {
                    for j in 0..stride.min(row.len() - idx - stride) {
                        row[idx + stride + j] = u64::MAX;
                    }
                    idx += 2 * stride;
                }
            } else {
                const PATTERNS: [u64; 6] = [
                    0xAAAA_AAAA_AAAA_AAAA,
                    0xCCCC_CCCC_CCCC_CCCC,
                    0xF0F0_F0F0_F0F0_F0F0,
                    0xFF00_FF00_FF00_FF00,
                    0xFFFF_0000_FFFF_0000,
                    0xFFFF_FFFF_0000_0000,
                ];
                for w in row {
                    *w = PATTERNS[i];
                }
            }
        }
        t.propagate(aig);
        Ok(t)
    }

    /// Minimum `num_nodes * words` product before propagation uses
    /// threads. `par_ranges` spawns fresh OS threads per call (no
    /// pool), so the bar sits where the serial loop costs well over
    /// the spawn/join overhead (~250k word-ANDs ≈ hundreds of µs);
    /// public so tests can assert which side of the dispatch a
    /// workload lands on.
    pub const PAR_MIN_WORK: usize = 1 << 18;
    /// Minimum word count for the word-parallel strategy (narrower
    /// tables use levelized node-parallelism); public for the same
    /// reason as [`SimTable::PAR_MIN_WORK`].
    pub const PAR_MIN_WORDS: usize = 8;
    /// Minimum word-AND operations a spawned worker must amortize.
    const PAR_MIN_CHUNK_WORK: usize = 1 << 16;

    /// Propagates input rows through the AND nodes.
    ///
    /// Dispatches between three strategies producing bit-identical
    /// tables: serial (small tables, or `AIG_THREADS=1`),
    /// word-parallel (each worker owns a contiguous range of the word
    /// dimension — AND is bitwise, so every word column is an
    /// independent simulation), and levelized node-parallel (narrow
    /// tables: nodes are chunked by topological level and each level's
    /// nodes are computed concurrently).
    fn propagate(&mut self, aig: &Aig) {
        let threads = crate::par::max_threads();
        let work = aig.num_nodes().saturating_mul(self.words);
        if threads <= 1 || work < Self::PAR_MIN_WORK {
            self.propagate_serial(aig);
        } else if self.words >= Self::PAR_MIN_WORDS {
            self.propagate_word_parallel(aig);
        } else {
            self.propagate_level_parallel(aig);
        }
    }

    fn propagate_serial(&mut self, aig: &Aig) {
        let words = self.words;
        let (f0s, f1s) = aig.fanin_arrays();
        aig.for_each_and_topo(|id| {
            let (f0, f1) = (f0s[id as usize], f1s[id as usize]);
            for w in 0..words {
                let a = self.lit_word(f0, w);
                let b = self.lit_word(f1, w);
                self.data[id as usize * words + w] = a & b;
            }
        });
        self.mask_tail();
    }

    /// Word-parallel propagation: worker `t` simulates word columns
    /// `[w0, w1)` of every node. Each column only ever reads and
    /// writes its own words, so the raw-pointer writes are disjoint.
    fn propagate_word_parallel(&mut self, aig: &Aig) {
        let words = self.words;
        let min_chunk = (Self::PAR_MIN_CHUNK_WORK / aig.num_nodes().max(1)).max(1);
        let order = if aig.is_topological() {
            None
        } else {
            Some(aig.topo_and_order())
        };
        let (f0s, f1s) = aig.fanin_arrays();
        let ptr = SharedRows(self.data.as_mut_ptr());
        crate::par::par_ranges(words, min_chunk, |wr| {
            let p = ptr;
            let step = |id: NodeId| {
                let (f0, f1) = (f0s[id as usize], f1s[id as usize]);
                for w in wr.clone() {
                    // SAFETY: every index touched has word component
                    // in this worker's exclusive range `wr`.
                    unsafe {
                        let a = p.read_lit(f0, words, w);
                        let b = p.read_lit(f1, words, w);
                        p.write(id as usize * words + w, a & b);
                    }
                }
            };
            match &order {
                Some(o) => o.iter().copied().for_each(step),
                None => aig.and_ids().for_each(step),
            }
        });
        self.mask_tail();
    }

    /// Levelized node-parallel propagation: nodes of equal
    /// topological level have no dependencies among themselves, so
    /// each level is computed as one parallel chunk (the `par_ranges`
    /// join is the inter-level barrier).
    fn propagate_level_parallel(&mut self, aig: &Aig) {
        // Counting-sort AND ids by level into one flat array: three
        // fixed allocations per call, not one Vec per level.
        let level = crate::analysis::levels(aig).level;
        let max_level = aig
            .and_ids()
            .map(|id| level[id as usize] as usize)
            .max()
            .unwrap_or(0);
        // offsets[l] = start of level l's ids; AND levels are >= 1.
        let mut offsets = vec![0u32; max_level + 2];
        for id in aig.and_ids() {
            offsets[level[id as usize] as usize + 1] += 1;
        }
        for l in 1..offsets.len() {
            offsets[l] += offsets[l - 1];
        }
        let mut ids = vec![0 as NodeId; offsets[max_level + 1] as usize];
        let mut cursor = offsets.clone();
        for id in aig.and_ids() {
            let l = level[id as usize] as usize;
            ids[cursor[l] as usize] = id;
            cursor[l] += 1;
        }
        let words = self.words;
        // Levels narrower than one amortizing chunk run inline on the
        // calling thread (par_ranges spawns nothing for one range).
        let min_chunk = (Self::PAR_MIN_CHUNK_WORK / words.max(1)).max(1);
        let (f0s, f1s) = aig.fanin_arrays();
        let ptr = SharedRows(self.data.as_mut_ptr());
        for l in 1..=max_level {
            let nodes = &ids[offsets[l] as usize..offsets[l + 1] as usize];
            crate::par::par_ranges(nodes.len(), min_chunk, |r| {
                let p = ptr;
                for &id in &nodes[r] {
                    let (f0, f1) = (f0s[id as usize], f1s[id as usize]);
                    for w in 0..words {
                        // SAFETY: this worker exclusively owns the
                        // rows of its node range; fanin rows are from
                        // strictly lower levels, finished at the
                        // previous level's barrier.
                        unsafe {
                            let a = p.read_lit(f0, words, w);
                            let b = p.read_lit(f1, words, w);
                            p.write(id as usize * words + w, a & b);
                        }
                    }
                }
            });
        }
        self.mask_tail();
    }

    /// Zeroes the pattern bits past `valid_bits` in every row.
    fn mask_tail(&mut self) {
        let rem = self.valid_bits % 64;
        if rem != 0 {
            let mask = (1u64 << rem) - 1;
            for node in 0..self.data.len() / self.words {
                self.data[node * self.words + self.words - 1] &= mask;
            }
        }
    }

    fn row_mut(&mut self, id: NodeId) -> &mut [u64] {
        let s = id as usize * self.words;
        &mut self.data[s..s + self.words]
    }

    /// Simulation row of node `id` (plain polarity).
    pub fn node_row(&self, id: NodeId) -> &[u64] {
        let s = id as usize * self.words;
        &self.data[s..s + self.words]
    }

    /// Word `w` of literal `l`'s simulated values (complement applied).
    #[inline]
    pub fn lit_word(&self, l: Lit, w: usize) -> u64 {
        let v = self.data[l.var() as usize * self.words + w];
        if l.is_complement() {
            !v
        } else {
            v
        }
    }

    /// Value of node `id` under input pattern `m`.
    pub fn node_bit(&self, id: NodeId, m: usize) -> bool {
        assert!(m < self.valid_bits);
        self.data[id as usize * self.words + (m >> 6)] >> (m & 63) & 1 == 1
    }

    /// Value of literal `l` under input pattern `m`.
    pub fn lit_bit(&self, l: Lit, m: usize) -> bool {
        self.node_bit(l.var(), m) ^ l.is_complement()
    }

    /// Number of valid pattern bits.
    pub fn num_patterns(&self) -> usize {
        self.valid_bits
    }

    /// Word `w` of literal `l`, with the invalid tail bits of the
    /// last word zeroed (complementation flips them to ones, so the
    /// mask must be re-applied after the complement).
    #[inline]
    fn masked_lit_word(&self, l: Lit, w: usize) -> u64 {
        let v = self.lit_word(l, w);
        let rem = self.valid_bits % 64;
        if rem != 0 && w == self.words - 1 {
            v & ((1u64 << rem) - 1)
        } else {
            v
        }
    }

    /// Whether literal `l` of `self` and literal `ol` of `other` have
    /// identical signatures, compared word-by-word without building
    /// intermediate vectors.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the two tables have different widths.
    pub fn signature_eq(&self, l: Lit, other: &SimTable, ol: Lit) -> bool {
        debug_assert_eq!(self.words, other.words);
        debug_assert_eq!(self.valid_bits, other.valid_bits);
        (0..self.words).all(|w| self.masked_lit_word(l, w) == other.masked_lit_word(ol, w))
    }

    /// Signature (masked words) of literal `l`.
    ///
    /// Allocates the result vector; the equivalence-checking hot path
    /// uses [`SimTable::signature_eq`] instead, which compares in
    /// place.
    pub fn lit_signature(&self, l: Lit) -> Vec<u64> {
        (0..self.words)
            .map(|w| self.masked_lit_word(l, w))
            .collect()
    }
}

/// Raw shared pointer into the simulation table for the parallel
/// propagation strategies. Soundness relies on each worker writing a
/// disjoint set of indices (disjoint word ranges, or disjoint node
/// rows within one level) and reading only indices no other live
/// worker writes.
#[derive(Clone, Copy)]
struct SharedRows(*mut u64);

unsafe impl Send for SharedRows {}
unsafe impl Sync for SharedRows {}

impl SharedRows {
    #[inline]
    unsafe fn read_lit(self, l: Lit, words: usize, w: usize) -> u64 {
        let v = unsafe { *self.0.add(l.var() as usize * words + w) };
        if l.is_complement() {
            !v
        } else {
            v
        }
    }

    #[inline]
    unsafe fn write(self, idx: usize, v: u64) {
        unsafe { *self.0.add(idx) = v }
    }
}

/// Exhaustively checks functional equivalence of two AIGs.
///
/// The graphs must have identical input and output counts; outputs are
/// compared positionally.
///
/// # Errors
///
/// * [`AigError::Mismatch`] when I/O counts differ.
/// * [`AigError::TooManyInputs`] when either AIG has more than 16
///   inputs; use [`equiv_random`] in that case.
pub fn equiv_exhaustive(a: &Aig, b: &Aig) -> Result<bool, AigError> {
    check_interfaces(a, b)?;
    let sa = SimTable::exhaustive(a)?;
    let sb = SimTable::exhaustive(b)?;
    Ok(outputs_agree(a, b, &sa, &sb))
}

/// Random-simulation equivalence check: `Ok(false)` proves the AIGs
/// differ; `Ok(true)` means no difference was observed on
/// `words * 64` random patterns (probabilistic evidence only).
///
/// # Errors
///
/// Returns [`AigError::Mismatch`] when I/O counts differ.
pub fn equiv_random(a: &Aig, b: &Aig, words: usize, seed: u64) -> Result<bool, AigError> {
    check_interfaces(a, b)?;
    let sa = SimTable::random(a, words, seed);
    let sb = SimTable::random(b, words, seed);
    Ok(outputs_agree(a, b, &sa, &sb))
}

/// Equivalence check choosing exhaustive when feasible (≤ 16 inputs),
/// falling back to `words * 64` random patterns otherwise.
///
/// # Errors
///
/// Returns [`AigError::Mismatch`] when I/O counts differ.
pub fn equiv_auto(a: &Aig, b: &Aig, words: usize, seed: u64) -> Result<bool, AigError> {
    if a.num_inputs() <= 16 {
        equiv_exhaustive(a, b)
    } else {
        equiv_random(a, b, words, seed)
    }
}

fn check_interfaces(a: &Aig, b: &Aig) -> Result<(), AigError> {
    if a.num_inputs() != b.num_inputs() || a.num_outputs() != b.num_outputs() {
        return Err(AigError::Mismatch(format!(
            "interface mismatch: {}/{} inputs, {}/{} outputs",
            a.num_inputs(),
            b.num_inputs(),
            a.num_outputs(),
            b.num_outputs()
        )));
    }
    Ok(())
}

fn outputs_agree(a: &Aig, b: &Aig, sa: &SimTable, sb: &SimTable) -> bool {
    a.outputs()
        .iter()
        .zip(b.outputs())
        .all(|(oa, ob)| sa.signature_eq(oa.lit, sb, ob.lit))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_pair() -> (Aig, Aig) {
        // Two structurally different XOR implementations.
        let mut g1 = Aig::new();
        let a = g1.add_input();
        let b = g1.add_input();
        let x = g1.xor(a, b);
        g1.add_output(x, None::<&str>);

        let mut g2 = Aig::new();
        let a = g2.add_input();
        let b = g2.add_input();
        // xor = (a|b) & !(a&b)
        let o = g2.or(a, b);
        let n = g2.and(a, b);
        let x = g2.and(o, !n);
        g2.add_output(x, None::<&str>);
        (g1, g2)
    }

    #[test]
    fn exhaustive_equiv_xor() {
        let (g1, g2) = xor_pair();
        assert!(equiv_exhaustive(&g1, &g2).expect("small"));
    }

    #[test]
    fn exhaustive_detects_difference() {
        let (g1, mut g2) = xor_pair();
        // Change g2's output to XNOR.
        let l = g2.outputs()[0].lit;
        g2.set_output(0, !l);
        assert!(!equiv_exhaustive(&g1, &g2).expect("small"));
    }

    #[test]
    fn random_equiv_consistent_with_exhaustive() {
        let (g1, g2) = xor_pair();
        assert!(equiv_random(&g1, &g2, 4, 7).expect("iface ok"));
    }

    #[test]
    fn interface_mismatch_is_error() {
        let (g1, _) = xor_pair();
        let g3 = Aig::with_inputs(3);
        assert!(matches!(
            equiv_exhaustive(&g1, &g3),
            Err(AigError::Mismatch(_))
        ));
    }

    #[test]
    fn too_many_inputs() {
        let mut g = Aig::with_inputs(17);
        let l = Lit::new(1, false);
        g.add_output(l, None::<&str>);
        assert!(matches!(
            SimTable::exhaustive(&g),
            Err(AigError::TooManyInputs { .. })
        ));
    }

    #[test]
    fn exhaustive_pattern_values() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        let f = g.and(a, b);
        g.add_output(f, None::<&str>);
        let t = SimTable::exhaustive(&g).expect("2 inputs");
        assert_eq!(t.num_patterns(), 4);
        // minterm 3 (a=1, b=1) is the only satisfying one
        assert!(t.node_bit(f.var(), 3));
        assert!(!t.node_bit(f.var(), 1));
        assert!(t.lit_bit(!f, 1));
        // signature = single masked word 0b1000
        assert_eq!(t.lit_signature(f), vec![0b1000]);
    }

    #[test]
    fn random_reproducible() {
        let (g1, _) = xor_pair();
        let t1 = SimTable::random(&g1, 2, 42);
        let t2 = SimTable::random(&g1, 2, 42);
        assert_eq!(t1.node_row(1), t2.node_row(1));
    }

    fn random_graph(seed: u64, num_inputs: usize, num_nodes: usize) -> Aig {
        crate::test_support::random_aig(seed, num_inputs, num_nodes, 5)
    }

    /// Both parallel propagation strategies must produce tables
    /// bit-identical to the serial reference, on random graphs of
    /// varying width (words) and depth.
    #[test]
    fn parallel_propagation_matches_serial() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..16 {
            let g = random_graph(seed, 6 + (seed as usize % 5), 150);
            for words in [1usize, 2, 8, 16] {
                let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
                let mut base = SimTable {
                    words,
                    valid_bits: words * 64 - 3, // exercise tail masking
                    data: vec![0u64; g.num_nodes() * words],
                };
                for &pi in g.inputs() {
                    for w in base.row_mut(pi) {
                        *w = rng.gen();
                    }
                }
                let mut serial = base.clone();
                serial.propagate_serial(&g);
                let mut word_par = base.clone();
                word_par.propagate_word_parallel(&g);
                let mut level_par = base.clone();
                level_par.propagate_level_parallel(&g);
                assert_eq!(serial.data, word_par.data, "seed {seed} words {words}");
                assert_eq!(serial.data, level_par.data, "seed {seed} words {words}");
            }
        }
    }

    /// `signature_eq` must agree with comparing `lit_signature`
    /// vectors for every pair of literals, including complements.
    #[test]
    fn signature_eq_matches_vec_comparison() {
        let g = random_graph(3, 7, 120);
        let t = SimTable::random(&g, 3, 9);
        let lits: Vec<Lit> = g
            .node_ids()
            .flat_map(|id| [Lit::new(id, false), Lit::new(id, true)])
            .collect();
        for (i, &a) in lits.iter().enumerate().step_by(7) {
            for &b in lits.iter().skip(i % 3).step_by(11) {
                assert_eq!(
                    t.signature_eq(a, &t, b),
                    t.lit_signature(a) == t.lit_signature(b),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn const_outputs() {
        let mut g1 = Aig::with_inputs(1);
        g1.add_output(Lit::TRUE, None::<&str>);
        let mut g2 = Aig::with_inputs(1);
        g2.add_output(Lit::FALSE, None::<&str>);
        assert!(!equiv_exhaustive(&g1, &g2).expect("tiny"));
        assert!(equiv_exhaustive(&g1, &g1.clone()).expect("tiny"));
    }
}
