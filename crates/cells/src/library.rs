//! Cell and library definitions plus the builtin 130nm-class library.

use crate::expr::BoolExpr;
use std::fmt;

/// Fixed-point scale for capacitance/area accumulation: quantities
/// are accumulated in integer micro-units (1e-6 fF, 1e-6 µm²).
///
/// Net loads and total cell area are *sums* of per-pin/per-cell
/// contributions, and `f64` addition is not associative — two code
/// paths summing the same contributions in different orders can
/// disagree in the last bit. The incremental timing engine maintains
/// these sums by delta, so every accumulation in the workspace
/// instead sums exact integers (micro-units, converted back to `f64`
/// once at the end): any summation order, including delta
/// maintenance, produces bit-identical results. The quantization
/// (1e-6 fF / 1e-6 µm²) is far below library data precision.
pub const FIXED_UNITS_PER_UNIT: f64 = 1e6;

/// Converts a femtofarad/µm² quantity to exact integer micro-units.
#[inline]
pub fn to_fixed(x: f64) -> i64 {
    (x * FIXED_UNITS_PER_UNIT).round() as i64
}

/// Converts integer micro-units back to the `f64` quantity.
#[inline]
pub fn from_fixed(u: i64) -> f64 {
    (u as f64) / FIXED_UNITS_PER_UNIT
}

/// Index of a cell within a [`Library`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub u32);

/// Electrical and timing data of one input pin.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pin {
    /// Input capacitance in femtofarads.
    pub cap_ff: f64,
    /// Pin-to-output intrinsic delay in picoseconds.
    pub intrinsic_ps: f64,
}

/// A combinational standard cell.
///
/// The delay from input pin `i` to the output under load `C` (fF) is
/// modeled as `pins[i].intrinsic_ps + drive_res * C` — a linear
/// (resistance-based) approximation of an NLDM table, sufficient to
/// reproduce the load/merging timing effects the paper studies.
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// Cell name, e.g. `NAND2_X1`.
    pub name: String,
    /// Cell area in square micrometers.
    pub area_um2: f64,
    /// Function truth table over the input pins (pin `i` = variable
    /// `i`), low `2^n` bits of the word.
    pub tt: u16,
    /// Input pins in function-variable order.
    pub pins: Vec<Pin>,
    /// Output drive resistance in ps/fF.
    pub drive_res: f64,
    /// The function in expression form (kept for round-tripping).
    pub function: BoolExpr,
    /// Names of the pins matching `pins` order.
    pub pin_names: Vec<String>,
}

impl Pin {
    /// Input capacitance in integer micro-femtofarads (see
    /// [`FIXED_UNITS_PER_UNIT`]).
    #[inline]
    pub fn cap_fixed(&self) -> i64 {
        to_fixed(self.cap_ff)
    }
}

impl Cell {
    /// Number of input pins.
    pub fn num_inputs(&self) -> usize {
        self.pins.len()
    }

    /// Cell area in integer micro-µm² (see [`FIXED_UNITS_PER_UNIT`]).
    #[inline]
    pub fn area_fixed(&self) -> i64 {
        to_fixed(self.area_um2)
    }

    /// Delay (ps) from pin `pin` to the output driving `load_ff`.
    ///
    /// # Panics
    ///
    /// Panics if `pin` is out of bounds.
    #[inline]
    pub fn delay_ps(&self, pin: usize, load_ff: f64) -> f64 {
        self.pins[pin].intrinsic_ps + self.drive_res * load_ff
    }

    /// Worst-case pin-to-output delay at the given load.
    pub fn worst_delay_ps(&self, load_ff: f64) -> f64 {
        self.pins.iter().map(|p| p.intrinsic_ps).fold(0.0, f64::max) + self.drive_res * load_ff
    }
}

/// An ordered collection of cells plus global interconnect constants.
#[derive(Clone, Debug, PartialEq)]
pub struct Library {
    name: String,
    cells: Vec<Cell>,
    /// Estimated extra load per fanout branch (wire capacitance), fF.
    wire_cap_per_fanout_ff: f64,
}

impl Library {
    /// Creates an empty library.
    pub fn new(name: impl Into<String>, wire_cap_per_fanout_ff: f64) -> Self {
        Library {
            name: name.into(),
            cells: Vec::new(),
            wire_cap_per_fanout_ff,
        }
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Wire capacitance added to a net per fanout branch (fF).
    pub fn wire_cap_per_fanout_ff(&self) -> f64 {
        self.wire_cap_per_fanout_ff
    }

    /// Per-fanout wire capacitance in integer micro-femtofarads (see
    /// [`FIXED_UNITS_PER_UNIT`]).
    #[inline]
    pub fn wire_cap_fixed(&self) -> i64 {
        to_fixed(self.wire_cap_per_fanout_ff)
    }

    /// All cells in id order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The cell with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of bounds.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.0 as usize]
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the library has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Adds a cell, returning its id.
    pub fn push(&mut self, cell: Cell) -> CellId {
        self.cells.push(cell);
        CellId(self.cells.len() as u32 - 1)
    }

    /// Finds a cell by name.
    pub fn find(&self, name: &str) -> Option<CellId> {
        self.cells
            .iter()
            .position(|c| c.name == name)
            .map(|i| CellId(i as u32))
    }

    /// Id of the smallest inverter (fewest-area cell computing `!x`).
    ///
    /// # Panics
    ///
    /// Panics if the library has no inverter — every mapping-capable
    /// library must provide one.
    pub fn smallest_inverter(&self) -> CellId {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.num_inputs() == 1 && c.tt & 0b11 == 0b01)
            .min_by(|a, b| a.1.area_um2.total_cmp(&b.1.area_um2))
            .map(|(i, _)| CellId(i as u32))
            .expect("library must contain an inverter")
    }

    /// Inverters ordered by increasing drive strength (decreasing
    /// output resistance).
    pub fn inverters(&self) -> Vec<CellId> {
        let mut invs: Vec<CellId> = (0..self.cells.len() as u32)
            .map(CellId)
            .filter(|&id| {
                let c = self.cell(id);
                c.num_inputs() == 1 && c.tt & 0b11 == 0b01
            })
            .collect();
        invs.sort_by(|&a, &b| self.cell(b).drive_res.total_cmp(&self.cell(a).drive_res));
        invs
    }

    /// Variants of `base` (same function, different drive): cells
    /// whose truth table and arity match.
    pub fn drive_variants(&self, base: CellId) -> Vec<CellId> {
        let c = self.cell(base);
        (0..self.cells.len() as u32)
            .map(CellId)
            .filter(|&id| {
                let o = self.cell(id);
                o.num_inputs() == c.num_inputs() && o.tt == c.tt
            })
            .collect()
    }
}

impl fmt::Display for Library {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "library {} ({} cells)", self.name, self.cells.len())
    }
}

/// Helper used by the builtin library: builds a [`Cell`] from an
/// expression string and uniform pin data.
///
/// # Panics
///
/// Panics on a malformed expression (builtin data is trusted).
fn cell(
    name: &str,
    area: f64,
    func: &str,
    pin_names: &[&str],
    cap_ff: f64,
    intrinsic_ps: f64,
    drive_res: f64,
) -> Cell {
    let function = BoolExpr::parse(func).expect("builtin cell function parses");
    let tt = function.to_tt(pin_names);
    Cell {
        name: name.to_owned(),
        area_um2: area,
        tt,
        pins: pin_names
            .iter()
            .map(|_| Pin {
                cap_ff,
                intrinsic_ps,
            })
            .collect(),
        drive_res,
        function,
        pin_names: pin_names.iter().map(|&s| s.to_owned()).collect(),
    }
}

/// The builtin 130nm-class library used throughout the project.
///
/// This substitutes for the SkyWater 130nm PDK referenced in the
/// paper: cell names, areas, pin capacitances and delays are in
/// plausible 130nm ranges, and the cell set covers the common 1–4
/// input NPN classes at multiple drive strengths, so technology
/// mapping exhibits both node merging (stage-count changes) and
/// load-dependent delay — the two miscorrelation mechanisms §III-B of
/// the paper analyses.
///
/// # Examples
///
/// ```
/// use cells::sky130ish;
///
/// let lib = sky130ish();
/// assert!(lib.len() > 30);
/// let inv = lib.cell(lib.smallest_inverter());
/// assert_eq!(inv.num_inputs(), 1);
/// ```
pub fn sky130ish() -> Library {
    let mut lib = Library::new("sky130ish", 1.4);
    let a1 = ["a"];
    let a2 = ["a", "b"];
    let a3 = ["a", "b", "c"];
    let a4 = ["a", "b", "c", "d"];
    // name, area um2, function, pins, cap fF, intrinsic ps, R ps/fF
    let defs: Vec<Cell> = vec![
        cell("INV_X1", 2.5, "!a", &a1, 2.9, 14.0, 9.0),
        cell("INV_X2", 3.8, "!a", &a1, 5.6, 13.0, 4.6),
        cell("INV_X4", 6.3, "!a", &a1, 11.0, 12.5, 2.4),
        cell("INV_X8", 11.3, "!a", &a1, 21.5, 12.0, 1.3),
        cell("BUF_X1", 3.8, "a", &a1, 2.7, 32.0, 8.5),
        cell("BUF_X2", 5.0, "a", &a1, 3.2, 30.0, 4.4),
        cell("BUF_X4", 8.8, "a", &a1, 4.9, 29.0, 2.3),
        cell("NAND2_X1", 3.8, "!(a & b)", &a2, 3.3, 22.0, 10.0),
        cell("NAND2_X2", 6.3, "!(a & b)", &a2, 6.4, 21.0, 5.2),
        cell("NAND3_X1", 5.0, "!(a & b & c)", &a3, 3.6, 31.0, 11.5),
        cell("NAND4_X1", 6.3, "!(a & b & c & d)", &a4, 3.9, 40.0, 13.0),
        cell("NOR2_X1", 3.8, "!(a | b)", &a2, 3.2, 25.0, 11.5),
        cell("NOR2_X2", 6.3, "!(a | b)", &a2, 6.2, 24.0, 6.0),
        cell("NOR3_X1", 5.0, "!(a | b | c)", &a3, 3.4, 36.0, 13.5),
        cell("NOR4_X1", 6.3, "!(a | b | c | d)", &a4, 3.7, 47.0, 15.5),
        cell("AND2_X1", 5.0, "a & b", &a2, 3.0, 38.0, 8.8),
        cell("AND3_X1", 6.3, "a & b & c", &a3, 3.2, 46.0, 9.4),
        cell("AND4_X1", 7.5, "a & b & c & d", &a4, 3.4, 54.0, 10.0),
        cell("OR2_X1", 5.0, "a | b", &a2, 3.0, 41.0, 9.0),
        cell("OR3_X1", 6.3, "a | b | c", &a3, 3.2, 50.0, 9.6),
        cell("OR4_X1", 7.5, "a | b | c | d", &a4, 3.4, 59.0, 10.2),
        cell("AOI21_X1", 5.0, "!((a & b) | c)", &a3, 3.5, 30.0, 12.0),
        cell(
            "AOI22_X1",
            6.3,
            "!((a & b) | (c & d))",
            &a4,
            3.7,
            35.0,
            12.8,
        ),
        cell("AOI211_X1", 6.9, "!((a & b) | c | d)", &a4, 3.8, 39.0, 13.6),
        cell("OAI21_X1", 5.0, "!((a | b) & c)", &a3, 3.5, 29.0, 11.8),
        cell(
            "OAI22_X1",
            6.3,
            "!((a | b) & (c | d))",
            &a4,
            3.7,
            34.0,
            12.6,
        ),
        cell("OAI211_X1", 6.9, "!((a | b) & c & d)", &a4, 3.8, 38.0, 13.4),
        cell("ANDNOT_X1", 5.0, "a & !b", &a2, 3.1, 36.0, 9.2),
        cell("ORNOT_X1", 5.0, "a | !b", &a2, 3.1, 39.0, 9.4),
        cell("XOR2_X1", 7.5, "a ^ b", &a2, 4.3, 52.0, 11.0),
        cell("XNOR2_X1", 7.5, "!(a ^ b)", &a2, 4.3, 52.0, 11.0),
        cell("XOR3_X1", 11.9, "a ^ b ^ c", &a3, 4.9, 78.0, 12.5),
        cell(
            "MUX2_X1",
            8.8,
            "(s & b) | (!s & a)",
            &["a", "b", "s"],
            3.9,
            48.0,
            10.5,
        ),
        cell(
            "NMUX2_X1",
            8.2,
            "!((s & b) | (!s & a))",
            &["a", "b", "s"],
            3.8,
            41.0,
            11.0,
        ),
        cell(
            "MAJ3_X1",
            10.0,
            "(a & b) | (b & c) | (a & c)",
            &a3,
            4.1,
            56.0,
            11.5,
        ),
        cell("AO21_X1", 5.7, "(a & b) | c", &a3, 3.4, 42.0, 9.8),
        cell("OA21_X1", 5.7, "(a | b) & c", &a3, 3.4, 41.0, 9.7),
        cell("AO22_X1", 6.9, "(a & b) | (c & d)", &a4, 3.6, 47.0, 10.4),
        cell("OA22_X1", 6.9, "(a | b) & (c | d)", &a4, 3.6, 46.0, 10.3),
        cell("NAND2B_X1", 4.4, "!(!a & b)", &a2, 3.3, 27.0, 10.4),
        cell("NOR2B_X1", 4.4, "!(!a | b)", &a2, 3.3, 30.0, 11.0),
    ];
    for c in defs {
        lib.push(c);
    }
    lib
}

/// A 7nm-class FinFET-flavoured library derived by rescaling
/// [`sky130ish`]: roughly 7x faster intrinsics, 4x smaller pin
/// capacitances, 12x smaller areas, and cheaper XOR/MUX cells
/// (complex cells are relatively cheaper in FinFET nodes).
///
/// Used by the cross-technology generalization experiment: Table II
/// features are technology-independent, so a timing model trained on
/// one library should *rank* structures correctly under another.
///
/// # Examples
///
/// ```
/// use cells::{asap7ish, sky130ish};
///
/// let a = asap7ish();
/// let s = sky130ish();
/// assert_eq!(a.len(), s.len());
/// let inv7 = a.cell(a.find("INV_X1").expect("same cell set"));
/// let inv130 = s.cell(s.find("INV_X1").expect("builtin"));
/// assert!(inv7.pins[0].intrinsic_ps < inv130.pins[0].intrinsic_ps);
/// ```
pub fn asap7ish() -> Library {
    let base = sky130ish();
    let mut lib = Library::new("asap7ish", 0.35);
    for cell in base.cells() {
        let complex = cell.name.starts_with("XOR")
            || cell.name.starts_with("XNOR")
            || cell.name.starts_with("MUX")
            || cell.name.starts_with("NMUX")
            || cell.name.starts_with("MAJ");
        // Complex cells get an extra discount at the FinFET node.
        let delay_scale = if complex { 0.10 } else { 0.14 };
        let area_scale = if complex { 0.06 } else { 0.08 };
        lib.push(Cell {
            name: cell.name.clone(),
            area_um2: cell.area_um2 * area_scale,
            tt: cell.tt,
            pins: cell
                .pins
                .iter()
                .map(|p| Pin {
                    cap_ff: p.cap_ff * 0.25,
                    intrinsic_ps: p.intrinsic_ps * delay_scale,
                })
                .collect(),
            drive_res: cell.drive_res * 0.60,
            function: cell.function.clone(),
            pin_names: cell.pin_names.clone(),
        });
    }
    lib
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asap7ish_scales_down() {
        let a = asap7ish();
        let s = sky130ish();
        assert_eq!(a.name(), "asap7ish");
        for (ca, cs) in a.cells().iter().zip(s.cells()) {
            assert_eq!(ca.tt, cs.tt, "{}: function must match", ca.name);
            assert!(ca.area_um2 < cs.area_um2);
            assert!(ca.pins[0].intrinsic_ps < cs.pins[0].intrinsic_ps);
        }
        assert!(a.wire_cap_per_fanout_ff() < s.wire_cap_per_fanout_ff());
    }

    #[test]
    fn builtin_sanity() {
        let lib = sky130ish();
        assert!(lib.len() >= 40);
        assert!(!lib.is_empty());
        for c in lib.cells() {
            assert!(c.num_inputs() >= 1 && c.num_inputs() <= 4, "{}", c.name);
            assert!(c.area_um2 > 0.0);
            assert!(c.drive_res > 0.0);
            // tt must not be constant (no tie cells in this library)
            let bits = 1u32 << c.num_inputs();
            let mask = if bits >= 16 {
                0xFFFF
            } else {
                (1u16 << bits) - 1
            };
            assert_ne!(c.tt & mask, 0, "{} constant 0", c.name);
            assert_ne!(c.tt & mask, mask, "{} constant 1", c.name);
            // function expression agrees with the stored tt
            let pins: Vec<&str> = c.pin_names.iter().map(String::as_str).collect();
            assert_eq!(c.function.to_tt(&pins), c.tt, "{}", c.name);
        }
    }

    #[test]
    fn inverter_lookup() {
        let lib = sky130ish();
        let inv = lib.smallest_inverter();
        assert_eq!(lib.cell(inv).name, "INV_X1");
        let invs = lib.inverters();
        assert_eq!(invs.len(), 4);
        // ordered by increasing drive == decreasing resistance
        for w in invs.windows(2) {
            assert!(lib.cell(w[0]).drive_res >= lib.cell(w[1]).drive_res);
        }
    }

    #[test]
    fn delay_model_monotone_in_load() {
        let lib = sky130ish();
        let c = lib.cell(lib.find("NAND2_X1").expect("exists"));
        assert!(c.delay_ps(0, 10.0) > c.delay_ps(0, 2.0));
        assert!(c.worst_delay_ps(5.0) >= c.delay_ps(0, 5.0));
    }

    #[test]
    fn drive_variants_share_function() {
        let lib = sky130ish();
        let base = lib.find("NAND2_X1").expect("exists");
        let variants = lib.drive_variants(base);
        assert_eq!(variants.len(), 2); // X1, X2
        for v in variants {
            assert_eq!(lib.cell(v).tt, lib.cell(base).tt);
        }
    }

    #[test]
    fn bigger_drive_less_resistance() {
        let lib = sky130ish();
        let x1 = lib.cell(lib.find("INV_X1").expect("x1"));
        let x8 = lib.cell(lib.find("INV_X8").expect("x8"));
        assert!(x8.drive_res < x1.drive_res);
        assert!(x8.pins[0].cap_ff > x1.pins[0].cap_ff);
        assert!(x8.area_um2 > x1.area_um2);
    }

    #[test]
    fn find_missing() {
        let lib = sky130ish();
        assert!(lib.find("DFF_X1").is_none());
    }

    #[test]
    fn mux_function_correct() {
        let lib = sky130ish();
        let m = lib.cell(lib.find("MUX2_X1").expect("exists"));
        // pins a=var0, b=var1, s=var2; f = s ? b : a
        for mt in 0..8u16 {
            let a = mt & 1 == 1;
            let b = mt >> 1 & 1 == 1;
            let s = mt >> 2 & 1 == 1;
            let want = if s { b } else { a };
            assert_eq!(m.tt >> mt & 1 == 1, want, "minterm {mt}");
        }
    }
}
