//! Standard-cell library modeling for the `aig-timing` project.
//!
//! This crate substitutes for the SkyWater 130nm PDK used by the
//! paper: it defines combinational [`Cell`]s with a linear
//! resistance-based delay model, a [`Library`] container, the builtin
//! [`sky130ish`] library, and a small [`liberty`] text format for
//! loading custom libraries.
//!
//! # Examples
//!
//! ```
//! use cells::sky130ish;
//!
//! let lib = sky130ish();
//! let nand = lib.cell(lib.find("NAND2_X1").expect("builtin cell"));
//! // Delay grows linearly with load.
//! assert!(nand.delay_ps(0, 20.0) > nand.delay_ps(0, 5.0));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod expr;
pub mod liberty;
mod library;

pub use expr::BoolExpr;
pub use library::{
    asap7ish, from_fixed, sky130ish, to_fixed, Cell, CellId, Library, Pin, FIXED_UNITS_PER_UNIT,
};
