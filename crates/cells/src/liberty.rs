//! A tiny, self-contained "liberty-lite" text format for cell
//! libraries.
//!
//! The format is deliberately a small subset of Liberty:
//!
//! ```text
//! library(sky130ish) {
//!   wire_cap_per_fanout : 1.4;
//!   cell(NAND2_X1) {
//!     area : 3.8;
//!     function : "!(a & b)";
//!     resistance : 10.0;
//!     pin(a) { cap : 3.3; intrinsic : 22.0; }
//!     pin(b) { cap : 3.3; intrinsic : 22.0; }
//!   }
//! }
//! ```
//!
//! Pin declaration order defines the function-variable order.

use crate::expr::BoolExpr;
use crate::library::{Cell, Library, Pin};
use std::fmt;

/// Error from [`parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseLibertyError {
    /// 1-based line of the failure.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseLibertyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "liberty-lite parse error on line {}: {}",
            self.line, self.msg
        )
    }
}

impl std::error::Error for ParseLibertyError {}

fn err(line: usize, msg: impl Into<String>) -> ParseLibertyError {
    ParseLibertyError {
        line,
        msg: msg.into(),
    }
}

/// Serializes a [`Library`] in liberty-lite format.
pub fn to_string(lib: &Library) -> String {
    let mut s = format!("library({}) {{\n", lib.name());
    s.push_str(&format!(
        "  wire_cap_per_fanout : {};\n",
        lib.wire_cap_per_fanout_ff()
    ));
    for c in lib.cells() {
        s.push_str(&format!("  cell({}) {{\n", c.name));
        s.push_str(&format!("    area : {};\n", c.area_um2));
        s.push_str(&format!("    function : \"{}\";\n", c.function));
        s.push_str(&format!("    resistance : {};\n", c.drive_res));
        for (name, pin) in c.pin_names.iter().zip(&c.pins) {
            s.push_str(&format!(
                "    pin({name}) {{ cap : {}; intrinsic : {}; }}\n",
                pin.cap_ff, pin.intrinsic_ps
            ));
        }
        s.push_str("  }\n");
    }
    s.push_str("}\n");
    s
}

/// Parses a liberty-lite document into a [`Library`].
///
/// # Errors
///
/// Returns [`ParseLibertyError`] with a line number for malformed
/// input, unknown attributes, or function/pin mismatches.
///
/// # Examples
///
/// ```
/// use cells::{liberty, sky130ish};
///
/// let lib = sky130ish();
/// let text = liberty::to_string(&lib);
/// let back = liberty::parse(&text)?;
/// assert_eq!(lib, back);
/// # Ok::<(), cells::liberty::ParseLibertyError>(())
/// ```
pub fn parse(text: &str) -> Result<Library, ParseLibertyError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with("//"));

    let (ln, first) = lines.next().ok_or_else(|| err(0, "empty document"))?;
    let lib_name = first
        .strip_prefix("library(")
        .and_then(|r| r.split(')').next())
        .ok_or_else(|| err(ln, "expected `library(NAME) {`"))?
        .to_owned();
    let mut wire_cap = 0.0f64;
    let mut cells: Vec<Cell> = Vec::new();

    #[derive(Default)]
    struct PendingCell {
        name: String,
        area: Option<f64>,
        function: Option<BoolExpr>,
        resistance: Option<f64>,
        pin_names: Vec<String>,
        pins: Vec<Pin>,
        line: usize,
    }
    let mut current: Option<PendingCell> = None;

    for (ln, line) in lines {
        if line == "}" {
            match current.take() {
                Some(pc) => {
                    let function = pc.function.ok_or_else(|| {
                        err(pc.line, format!("cell {} missing function", pc.name))
                    })?;
                    let names: Vec<&str> = pc.pin_names.iter().map(String::as_str).collect();
                    for p in function.pins() {
                        if !names.contains(&p) {
                            return Err(err(
                                pc.line,
                                format!("cell {}: function pin `{p}` not declared", pc.name),
                            ));
                        }
                    }
                    if names.len() > 4 {
                        return Err(err(pc.line, format!("cell {}: more than 4 pins", pc.name)));
                    }
                    let tt = function.to_tt(&names);
                    cells.push(Cell {
                        name: pc.name,
                        area_um2: pc.area.ok_or_else(|| err(pc.line, "cell missing area"))?,
                        tt,
                        pins: pc.pins,
                        drive_res: pc
                            .resistance
                            .ok_or_else(|| err(pc.line, "cell missing resistance"))?,
                        function,
                        pin_names: pc.pin_names,
                    });
                }
                None => {
                    // closing the library block: done
                    let mut lib = Library::new(lib_name, wire_cap);
                    for c in cells {
                        lib.push(c);
                    }
                    return Ok(lib);
                }
            }
        } else if let Some(rest) = line.strip_prefix("cell(") {
            if current.is_some() {
                return Err(err(ln, "nested cell blocks are not allowed"));
            }
            let name = rest
                .split(')')
                .next()
                .ok_or_else(|| err(ln, "expected `cell(NAME) {`"))?
                .to_owned();
            current = Some(PendingCell {
                name,
                line: ln,
                ..Default::default()
            });
        } else if let Some(rest) = line.strip_prefix("pin(") {
            let pc = current
                .as_mut()
                .ok_or_else(|| err(ln, "pin outside of cell block"))?;
            let name = rest
                .split(')')
                .next()
                .ok_or_else(|| err(ln, "expected `pin(NAME) { ... }`"))?
                .to_owned();
            let cap = attr_value(rest, "cap").ok_or_else(|| err(ln, "pin missing cap"))?;
            let intrinsic =
                attr_value(rest, "intrinsic").ok_or_else(|| err(ln, "pin missing intrinsic"))?;
            pc.pin_names.push(name);
            pc.pins.push(Pin {
                cap_ff: cap,
                intrinsic_ps: intrinsic,
            });
        } else if let Some((key, value)) = split_attr(line) {
            match (key, &mut current) {
                ("wire_cap_per_fanout", None) => {
                    wire_cap = value.parse().map_err(|_| err(ln, "bad number"))?;
                }
                ("area", Some(pc)) => {
                    pc.area = Some(value.parse().map_err(|_| err(ln, "bad number"))?);
                }
                ("resistance", Some(pc)) => {
                    pc.resistance = Some(value.parse().map_err(|_| err(ln, "bad number"))?);
                }
                ("function", Some(pc)) => {
                    let quoted = value.trim().trim_matches('"');
                    pc.function = Some(
                        BoolExpr::parse(quoted)
                            .map_err(|e| err(ln, format!("bad function: {e}")))?,
                    );
                }
                (k, _) => return Err(err(ln, format!("unknown attribute `{k}`"))),
            }
        } else {
            return Err(err(ln, format!("cannot parse line: `{line}`")));
        }
    }
    Err(err(0, "unexpected end of input (unclosed block)"))
}

/// Splits `key : value;` into components.
fn split_attr(line: &str) -> Option<(&str, &str)> {
    let line = line.strip_suffix(';')?;
    let (key, value) = line.split_once(':')?;
    Some((key.trim(), value.trim()))
}

/// Extracts `key : NUMBER;` from inside an inline pin block.
fn attr_value(text: &str, key: &str) -> Option<f64> {
    let idx = text.find(key)?;
    let rest = &text[idx + key.len()..];
    let rest = rest.trim_start().strip_prefix(':')?;
    let end = rest.find(';')?;
    rest[..end].trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::sky130ish;

    #[test]
    fn builtin_roundtrip() {
        let lib = sky130ish();
        let text = to_string(&lib);
        let back = parse(&text).expect("roundtrip");
        assert_eq!(lib, back);
    }

    #[test]
    fn minimal_library() {
        let text = r#"
            library(mini) {
              wire_cap_per_fanout : 2.0;
              cell(INV) {
                area : 1.0;
                function : "!a";
                resistance : 5.0;
                pin(a) { cap : 1.5; intrinsic : 10.0; }
              }
            }
        "#;
        let lib = parse(text).expect("parse");
        assert_eq!(lib.name(), "mini");
        assert_eq!(lib.len(), 1);
        assert_eq!(lib.wire_cap_per_fanout_ff(), 2.0);
        let c = lib.cell(lib.find("INV").expect("exists"));
        assert_eq!(c.tt & 0b11, 0b01);
    }

    #[test]
    fn error_reporting() {
        assert!(parse("").is_err());
        assert!(parse("library(x) {").is_err()); // unclosed
        let bad_fn = r#"
            library(x) {
              cell(C) {
                area : 1.0;
                function : "a &&& b";
                resistance : 1.0;
                pin(a) { cap : 1.0; intrinsic : 1.0; }
                pin(b) { cap : 1.0; intrinsic : 1.0; }
              }
            }
        "#;
        let e = parse(bad_fn).unwrap_err();
        assert!(e.msg.contains("bad function"), "{e}");
    }

    #[test]
    fn undeclared_pin_rejected() {
        let text = r#"
            library(x) {
              cell(C) {
                area : 1.0;
                function : "a & q";
                resistance : 1.0;
                pin(a) { cap : 1.0; intrinsic : 1.0; }
              }
            }
        "#;
        let e = parse(text).unwrap_err();
        assert!(e.msg.contains("not declared"), "{e}");
    }

    #[test]
    fn missing_attrs_rejected() {
        let text = r#"
            library(x) {
              cell(C) {
                function : "a";
                resistance : 1.0;
                pin(a) { cap : 1.0; intrinsic : 1.0; }
              }
            }
        "#;
        let e = parse(text).unwrap_err();
        assert!(e.msg.contains("area"), "{e}");
    }
}
