//! Boolean expression parsing for liberty-lite `function` strings.
//!
//! Grammar (precedence low → high): `|` (OR), `^` (XOR), `&` (AND),
//! `!` (NOT), parentheses, identifiers. Whitespace is insignificant.

use std::fmt;

/// A parsed Boolean expression over named pins.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoolExpr {
    /// A pin reference by name.
    Var(String),
    /// Logical negation.
    Not(Box<BoolExpr>),
    /// Logical conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Logical disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
    /// Exclusive or.
    Xor(Box<BoolExpr>, Box<BoolExpr>),
}

/// Error produced when a `function` string cannot be parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseExprError {
    /// Byte offset of the failure.
    pub position: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad boolean expression at byte {}: {}",
            self.position, self.msg
        )
    }
}

impl std::error::Error for ParseExprError {}

impl BoolExpr {
    /// Parses an expression such as `"!((a & b) | c)"`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseExprError`] for malformed input.
    ///
    /// # Examples
    ///
    /// ```
    /// use cells::expr::BoolExpr;
    ///
    /// let e = BoolExpr::parse("!(a & b)")?;
    /// assert_eq!(e.pins(), vec!["a", "b"]);
    /// assert!(e.eval(&|pin| pin == "a") ); // !(1 & 0) = 1
    /// # Ok::<(), cells::expr::ParseExprError>(())
    /// ```
    pub fn parse(s: &str) -> Result<BoolExpr, ParseExprError> {
        let mut p = Parser {
            src: s.as_bytes(),
            pos: 0,
        };
        let e = p.parse_or()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(ParseExprError {
                position: p.pos,
                msg: "trailing input".into(),
            });
        }
        Ok(e)
    }

    /// Evaluates the expression with pin values from `env`.
    pub fn eval(&self, env: &impl Fn(&str) -> bool) -> bool {
        match self {
            BoolExpr::Var(v) => env(v),
            BoolExpr::Not(e) => !e.eval(env),
            BoolExpr::And(a, b) => a.eval(env) && b.eval(env),
            BoolExpr::Or(a, b) => a.eval(env) || b.eval(env),
            BoolExpr::Xor(a, b) => a.eval(env) ^ b.eval(env),
        }
    }

    /// The distinct pin names, in first-appearance order.
    pub fn pins(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_pins(&mut out);
        out
    }

    fn collect_pins<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            BoolExpr::Var(v) => {
                if !out.contains(&v.as_str()) {
                    out.push(v);
                }
            }
            BoolExpr::Not(e) => e.collect_pins(out),
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) | BoolExpr::Xor(a, b) => {
                a.collect_pins(out);
                b.collect_pins(out);
            }
        }
    }

    /// The truth table of the expression over `pin_order`, as the low
    /// `2^n` bits of a `u16` (pin `i` is variable `i`).
    ///
    /// # Panics
    ///
    /// Panics if `pin_order.len() > 4` or a referenced pin is missing
    /// from `pin_order`.
    pub fn to_tt(&self, pin_order: &[&str]) -> u16 {
        assert!(pin_order.len() <= 4, "library cells limited to 4 inputs");
        let n = pin_order.len();
        let mut tt = 0u16;
        for m in 0..(1u16 << n) {
            let val = self.eval(&|pin| {
                let idx = pin_order
                    .iter()
                    .position(|&p| p == pin)
                    .unwrap_or_else(|| panic!("pin `{pin}` not in pin order"));
                m >> idx & 1 == 1
            });
            if val {
                tt |= 1 << m;
            }
        }
        tt
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::Var(v) => write!(f, "{v}"),
            BoolExpr::Not(e) => match **e {
                BoolExpr::Var(_) => write!(f, "!{e}"),
                _ => write!(f, "!({e})"),
            },
            BoolExpr::And(a, b) => write!(f, "({a} & {b})"),
            BoolExpr::Or(a, b) => write!(f, "({a} | {b})"),
            BoolExpr::Xor(a, b) => write!(f, "({a} ^ {b})"),
        }
    }
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn parse_or(&mut self) -> Result<BoolExpr, ParseExprError> {
        let mut lhs = self.parse_xor()?;
        while self.peek() == Some(b'|') {
            self.pos += 1;
            let rhs = self.parse_xor()?;
            lhs = BoolExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_xor(&mut self) -> Result<BoolExpr, ParseExprError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(b'^') {
            self.pos += 1;
            let rhs = self.parse_and()?;
            lhs = BoolExpr::Xor(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<BoolExpr, ParseExprError> {
        let mut lhs = self.parse_unary()?;
        while self.peek() == Some(b'&') {
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = BoolExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<BoolExpr, ParseExprError> {
        match self.peek() {
            Some(b'!') => {
                self.pos += 1;
                Ok(BoolExpr::Not(Box::new(self.parse_unary()?)))
            }
            Some(b'(') => {
                self.pos += 1;
                let e = self.parse_or()?;
                if self.peek() != Some(b')') {
                    return Err(ParseExprError {
                        position: self.pos,
                        msg: "expected `)`".into(),
                    });
                }
                self.pos += 1;
                Ok(e)
            }
            Some(c) if c.is_ascii_alphanumeric() || c == b'_' => {
                let start = self.pos;
                while self.pos < self.src.len()
                    && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                let name = std::str::from_utf8(&self.src[start..self.pos])
                    .expect("checked ascii")
                    .to_owned();
                Ok(BoolExpr::Var(name))
            }
            other => Err(ParseExprError {
                position: self.pos,
                msg: format!("unexpected {:?}", other.map(char::from)),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence() {
        // a | b & c == a | (b & c)
        let e = BoolExpr::parse("a | b & c").expect("parse");
        let tt = e.to_tt(&["a", "b", "c"]);
        let want = BoolExpr::parse("a | (b & c)")
            .expect("parse")
            .to_tt(&["a", "b", "c"]);
        assert_eq!(tt, want);
        let not_want = BoolExpr::parse("(a | b) & c")
            .expect("parse")
            .to_tt(&["a", "b", "c"]);
        assert_ne!(tt, not_want);
    }

    #[test]
    fn xor_level() {
        let e = BoolExpr::parse("a ^ b").expect("parse");
        assert_eq!(e.to_tt(&["a", "b"]), 0b0110);
    }

    #[test]
    fn not_binding() {
        let e = BoolExpr::parse("!a & b").expect("parse");
        assert_eq!(e.to_tt(&["a", "b"]), 0b0100);
        let e = BoolExpr::parse("!(a & b)").expect("parse");
        assert_eq!(e.to_tt(&["a", "b"]), 0b0111);
    }

    #[test]
    fn roundtrip_display() {
        for s in ["!(a & b)", "(a | b) ^ c", "!!a", "a & b & c & d"] {
            let e = BoolExpr::parse(s).expect("parse");
            let printed = e.to_string();
            let back = BoolExpr::parse(&printed).expect("reparse");
            let pins: Vec<&str> = e.pins();
            assert_eq!(e.to_tt(&pins), back.to_tt(&pins), "{s} -> {printed}");
        }
    }

    #[test]
    fn pin_collection_order() {
        let e = BoolExpr::parse("b & a | b").expect("parse");
        assert_eq!(e.pins(), vec!["b", "a"]);
    }

    #[test]
    fn errors() {
        assert!(BoolExpr::parse("").is_err());
        assert!(BoolExpr::parse("a &").is_err());
        assert!(BoolExpr::parse("(a").is_err());
        assert!(BoolExpr::parse("a b").is_err());
        assert!(BoolExpr::parse("a ~ b").is_err());
    }

    #[test]
    fn error_display() {
        let err = BoolExpr::parse("a &").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }
}
