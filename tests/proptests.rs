//! Property-based tests over randomly generated AIGs: every
//! transformation preserves function, mapping implements the AIG
//! exactly, AIGER round-trips losslessly, the optimized cut
//! enumeration matches the naive reference, and parallel simulation
//! matches serial.
//!
//! The offline build has no `proptest`, so cases are drawn from a
//! seeded [`rand::rngs::SmallRng`] stream: each property runs `CASES`
//! deterministic random graphs (failures print the case seed).

use aig::aiger;
use aig::sim::{equiv_exhaustive, SimTable};
use cells::sky130ish;
use techmap::{MapOptions, Mapper};
use transform::{perturb, reshape, Transform};

mod common;
use common::small_random_aig as random_aig;

const CASES: u64 = 48;

/// Each primitive transform preserves the Boolean function.
#[test]
fn transforms_preserve_function() {
    for case in 0..CASES {
        let g = random_aig(case);
        let t = Transform::ALL[case as usize % Transform::ALL.len()];
        let h = transform::apply(&g, t);
        assert!(
            equiv_exhaustive(&g, &h).expect("small graphs"),
            "case {case}: {t} broke function"
        );
    }
}

/// The seeded diversification moves preserve the function too.
#[test]
fn diversifiers_preserve_function() {
    for case in 0..CASES {
        let g = random_aig(1000 + case);
        let r = reshape(&g, case * 77);
        assert!(
            equiv_exhaustive(&g, &r).expect("small graphs"),
            "case {case}: reshape broke function"
        );
        let p = perturb(&g, case * 77);
        assert!(
            equiv_exhaustive(&g, &p).expect("small graphs"),
            "case {case}: perturb broke function"
        );
    }
}

/// Optimizing transforms never increase the live node count.
#[test]
fn optimizers_never_grow() {
    for case in 0..CASES {
        let g = random_aig(2000 + case);
        let t = [Transform::Balance, Transform::Rewrite, Transform::Refactor][case as usize % 3];
        let h = transform::apply(&g, t);
        assert!(
            h.num_live_ands() <= g.num_live_ands(),
            "case {case}: {t} grew the graph"
        );
    }
}

/// Mapping implements the AIG bit-exactly on all input patterns.
#[test]
fn mapping_is_exact() {
    let lib = sky130ish();
    let mapper = Mapper::new(&lib, MapOptions::default());
    for case in 0..CASES {
        let g = random_aig(3000 + case);
        let nl = mapper.map(&g).expect("mappable");
        let sim = SimTable::exhaustive(&g).expect("small");
        let n = g.num_inputs();
        for m in 0..(1usize << n) {
            let pis: Vec<bool> = (0..n).map(|i| m >> i & 1 == 1).collect();
            let got = nl.eval(&lib, &pis);
            for (k, o) in g.outputs().iter().enumerate() {
                assert_eq!(
                    got[k],
                    sim.lit_bit(o.lit, m),
                    "case {case}: output {k} pattern {m} differs"
                );
            }
        }
    }
}

/// ASCII and binary AIGER round-trips preserve the function.
#[test]
fn aiger_roundtrips() {
    for case in 0..CASES {
        let g = random_aig(4000 + case);
        let ascii = aiger::from_ascii(&aiger::to_ascii(&g)).expect("self-produced aag parses");
        assert!(equiv_exhaustive(&g, &ascii).expect("small"), "case {case}");
        let binary = aiger::from_binary(&aiger::to_binary(&g)).expect("self-produced aig parses");
        assert!(equiv_exhaustive(&g, &binary).expect("small"), "case {case}");
    }
}

/// BLIF round-trips preserve the function too.
#[test]
fn blif_roundtrips() {
    for case in 0..CASES {
        let g = random_aig(5000 + case);
        let text = aig::blif::to_blif(&g, "prop");
        let back = aig::blif::from_blif(&text).expect("self-produced blif parses");
        assert!(equiv_exhaustive(&g, &back).expect("small"), "case {case}");
    }
}

/// STA arrival times are monotone along the critical path, and the
/// fast delay query agrees with the full report.
#[test]
fn sta_is_consistent() {
    let lib = sky130ish();
    let mapper = Mapper::new(&lib, MapOptions::default());
    for case in 0..CASES {
        let g = random_aig(6000 + case);
        let nl = mapper.map(&g).expect("mappable");
        let (delay, area) = sta::delay_and_area(&nl, &lib);
        let report = sta::analyze(&nl, &lib);
        assert!((report.max_delay_ps - delay).abs() < 1e-9, "case {case}");
        assert!((report.area_um2 - area).abs() < 1e-9, "case {case}");
        assert!(report.worst_slack_ps() > -1e-6, "case {case}");
        for w in report.critical_path.windows(2) {
            assert!(w[0].arrival_ps <= w[1].arrival_ps + 1e-9, "case {case}");
        }
    }
}

/// `topo_and_order` / `forward_ids` structural properties, on
/// topological graphs and on graphs carrying committed forward
/// references (appended replacement cones spliced into earlier
/// readers): the order is a valid dependency order containing every
/// AND node exactly once, its position table is the exact inverse
/// (sentinel on non-ANDs), the snapshot is stable (pointer-equal)
/// across calls without edits, and the forward set is precisely the
/// ANDs reading a larger-id fanin.
#[test]
fn topo_order_is_a_stable_dependency_order() {
    use aig::incremental::{IncrementalAnalysis, Transaction};
    use aig::{Lit, TopoIndex};
    use std::sync::Arc;

    let check = |g: &aig::Aig, what: &str| {
        let ix = g.topo_and_order();
        // Pointer-stable without edits.
        assert!(
            Arc::ptr_eq(&ix, &g.topo_and_order()),
            "{what}: repeat call re-derived"
        );
        // Every AND exactly once.
        let mut listed: Vec<_> = ix.order().to_vec();
        listed.sort_unstable();
        let mut ands: Vec<_> = g.and_ids().collect();
        ands.sort_unstable();
        assert_eq!(
            listed, ands,
            "{what}: order is not a permutation of the ANDs"
        );
        // Inverse position table, sentinel on non-ANDs.
        for (i, &id) in ix.order().iter().enumerate() {
            assert_eq!(ix.positions()[id as usize], i as u32, "{what}: pos inverse");
        }
        for id in g.node_ids() {
            if !g.is_and(id) {
                assert_eq!(
                    ix.positions()[id as usize],
                    TopoIndex::NOT_AND,
                    "{what}: non-AND sentinel"
                );
            }
        }
        // Valid dependency order: every AND fanin precedes its reader.
        for &id in ix.order().iter() {
            let p = ix.positions()[id as usize];
            for f in g.fanins(id) {
                if g.is_and(f.var()) {
                    assert!(
                        ix.positions()[f.var() as usize] < p,
                        "{what}: fanin {} does not precede reader {id}",
                        f.var()
                    );
                }
            }
        }
        // The forward set is exactly the ANDs reading a larger id.
        let expected: Vec<_> = g
            .and_ids()
            .filter(|&id| g.fanins(id).iter().any(|f| f.var() > id))
            .collect();
        let got: Vec<_> = g.forward_ids().collect();
        assert_eq!(got, expected, "{what}: forward set");
        assert_eq!(g.is_topological(), expected.is_empty(), "{what}");
    };

    let mut forward_cases = 0usize;
    for case in 0..CASES {
        let mut g = random_aig(8000 + case);
        check(&g, &format!("case {case} (clean)"));
        // Splice an appended cone into a mid-graph node, creating
        // forward references at its readers.
        let ands: Vec<_> = g.and_ids().collect();
        if ands.len() < 4 {
            continue;
        }
        let target = ands[ands.len() / 2 + (case as usize % (ands.len() / 4))];
        let ins = g.inputs().to_vec();
        let a = Lit::new(ins[case as usize % ins.len()], case % 2 == 0);
        let b = Lit::new(ins[(case as usize + 1) % ins.len()], case % 3 == 0);
        let mut inc = IncrementalAnalysis::new(&g);
        let mut txn = Transaction::begin(&mut g, &mut inc);
        let cone = txn.and(a, b);
        let root = txn.and(cone, !a);
        // Strashing may resolve the "fresh" cone to an existing node
        // whose fanin contains the target — splicing that would close
        // a cycle; skip those draws.
        if txn.aig().reaches(root.var(), target) {
            txn.rollback();
            continue;
        }
        txn.substitute(target, root);
        txn.commit();
        check(&g, &format!("case {case} (appended)"));
        if !g.is_topological() {
            forward_cases += 1;
        }
    }
    assert!(
        forward_cases >= CASES as usize / 4,
        "too few forward-carrying cases ({forward_cases})"
    );
}

/// Feature extraction is total and finite on arbitrary AIGs.
#[test]
fn features_always_finite() {
    for case in 0..CASES {
        let g = random_aig(7000 + case);
        let fv = features::extract(&g);
        assert!(
            fv.as_slice().iter().all(|v| v.is_finite()),
            "case {case}: non-finite feature"
        );
        assert_eq!(fv[features::NODE_COUNT], g.num_ands() as f64, "case {case}");
    }
}
