//! Property-based tests over randomly generated AIGs: every
//! transformation preserves function, mapping implements the AIG
//! exactly, and AIGER round-trips losslessly.

use aig::sim::{equiv_exhaustive, SimTable};
use aig::{aiger, Aig, Lit};
use cells::sky130ish;
use proptest::prelude::*;
use techmap::{MapOptions, Mapper};
use transform::{perturb, reshape, Transform};

/// Strategy: a random AIG described by (num_inputs, node recipe,
/// output picks). Kept small so exhaustive equivalence stays cheap.
fn aig_strategy() -> impl Strategy<Value = Aig> {
    (
        2usize..8,
        prop::collection::vec((any::<u16>(), any::<u16>(), any::<bool>(), any::<bool>()), 1..60),
        prop::collection::vec((any::<u16>(), any::<bool>()), 1..5),
    )
        .prop_map(|(num_inputs, nodes, outputs)| {
            let mut g = Aig::new();
            let mut lits: Vec<Lit> = (0..num_inputs).map(|_| g.add_input()).collect();
            for (ia, ib, ca, cb) in nodes {
                let a = lits[ia as usize % lits.len()].complement_if(ca);
                let b = lits[ib as usize % lits.len()].complement_if(cb);
                lits.push(g.and(a, b));
            }
            for (io, co) in outputs {
                let l = lits[io as usize % lits.len()];
                g.add_output(l.complement_if(co), None::<&str>);
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Each primitive transform preserves the Boolean function.
    #[test]
    fn transforms_preserve_function(g in aig_strategy(), which in 0usize..6) {
        let t = Transform::ALL[which];
        let h = transform::apply(&g, t);
        prop_assert!(equiv_exhaustive(&g, &h).expect("small graphs"));
    }

    /// The seeded diversification moves preserve the function too.
    #[test]
    fn diversifiers_preserve_function(g in aig_strategy(), seed in any::<u64>()) {
        let r = reshape(&g, seed);
        prop_assert!(equiv_exhaustive(&g, &r).expect("small graphs"));
        let p = perturb(&g, seed);
        prop_assert!(equiv_exhaustive(&g, &p).expect("small graphs"));
    }

    /// Optimizing transforms never increase the live node count.
    #[test]
    fn optimizers_never_grow(g in aig_strategy(), which in 0usize..3) {
        let t = [Transform::Balance, Transform::Rewrite, Transform::Refactor][which];
        let h = transform::apply(&g, t);
        prop_assert!(h.num_live_ands() <= g.num_live_ands());
    }

    /// Mapping implements the AIG bit-exactly on all input patterns.
    #[test]
    fn mapping_is_exact(g in aig_strategy()) {
        let lib = sky130ish();
        let nl = Mapper::new(&lib, MapOptions::default()).map(&g).expect("mappable");
        let sim = SimTable::exhaustive(&g).expect("small");
        let n = g.num_inputs();
        for m in 0..(1usize << n) {
            let pis: Vec<bool> = (0..n).map(|i| m >> i & 1 == 1).collect();
            let got = nl.eval(&lib, &pis);
            for (k, o) in g.outputs().iter().enumerate() {
                prop_assert_eq!(got[k], sim.lit_bit(o.lit, m), "output {} pattern {}", k, m);
            }
        }
    }

    /// ASCII and binary AIGER round-trips preserve the function.
    #[test]
    fn aiger_roundtrips(g in aig_strategy()) {
        let ascii = aiger::from_ascii(&aiger::to_ascii(&g)).expect("self-produced aag parses");
        prop_assert!(equiv_exhaustive(&g, &ascii).expect("small"));
        let binary = aiger::from_binary(&aiger::to_binary(&g)).expect("self-produced aig parses");
        prop_assert!(equiv_exhaustive(&g, &binary).expect("small"));
    }

    /// BLIF round-trips preserve the function too.
    #[test]
    fn blif_roundtrips(g in aig_strategy()) {
        let text = aig::blif::to_blif(&g, "prop");
        let back = aig::blif::from_blif(&text).expect("self-produced blif parses");
        prop_assert!(equiv_exhaustive(&g, &back).expect("small"));
    }

    /// STA arrival times are monotone along the critical path, and
    /// the fast delay query agrees with the full report.
    #[test]
    fn sta_is_consistent(g in aig_strategy()) {
        let lib = sky130ish();
        let nl = Mapper::new(&lib, MapOptions::default()).map(&g).expect("mappable");
        let (delay, area) = sta::delay_and_area(&nl, &lib);
        let report = sta::analyze(&nl, &lib);
        prop_assert!((report.max_delay_ps - delay).abs() < 1e-9);
        prop_assert!((report.area_um2 - area).abs() < 1e-9);
        prop_assert!(report.worst_slack_ps() > -1e-6);
        for w in report.critical_path.windows(2) {
            prop_assert!(w[0].arrival_ps <= w[1].arrival_ps + 1e-9);
        }
    }

    /// Feature extraction is total and finite on arbitrary AIGs.
    #[test]
    fn features_always_finite(g in aig_strategy()) {
        let fv = features::extract(&g);
        prop_assert!(fv.as_slice().iter().all(|v| v.is_finite()));
        prop_assert_eq!(fv[features::NODE_COUNT], g.num_ands() as f64);
    }
}
