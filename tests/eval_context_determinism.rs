//! Determinism guarantees of the shared NPN resynthesis cache and the
//! SA evaluation context: optimization outputs must be byte-identical
//! whether the cache is cold, warm, shared, or disabled. (The
//! `AIG_THREADS` 1-vs-many half of the guarantee lives in its own
//! test binary, `npn_thread_determinism`, because the env var is
//! process-global.)

use aig::aiger::to_ascii;
use saopt::{optimize, optimize_with, EvalContext, ProxyCost, SaOptions};
use std::sync::Arc;
use transform::{recipes, Recipe, ResynthCache, Transform};

mod common;
use common::random_aig_with;

/// `optimize` with the default (enabled) cache vs a disabled cache:
/// best AIG, cost history, and per-candidate metrics all identical.
#[test]
fn optimize_cache_on_vs_off_is_byte_identical() {
    let g = random_aig_with(42, 9, 140, 4);
    let actions = recipes();
    let opts = SaOptions {
        iterations: 12,
        seed: 5,
        ..SaOptions::default()
    };
    let on = optimize_with(&g, &mut ProxyCost, &actions, &opts, &mut EvalContext::new());
    let off = optimize_with(
        &g,
        &mut ProxyCost,
        &actions,
        &opts,
        &mut EvalContext::without_cache(),
    );
    assert_eq!(
        to_ascii(&on.best),
        to_ascii(&off.best),
        "best AIG must not depend on the cache"
    );
    assert_eq!(on.history, off.history);
    assert_eq!(on.evaluated, off.evaluated);
    assert_eq!(on.best_cost, off.best_cost);
    assert_eq!(on.accepted, off.accepted);

    // And the plain entry point (transient cache) agrees too.
    let plain = optimize(&g, &mut ProxyCost, &actions, &opts);
    assert_eq!(to_ascii(&on.best), to_ascii(&plain.best));
    assert_eq!(on.history, plain.history);
}

/// The SA transaction engine on vs off: same seeds, same action
/// space (including the in-place-planned `rw`/`rwz` moves), the full
/// `SaResult` must be byte-identical — under the proxy evaluator
/// across several seeds, and under the ground-truth evaluator (whose
/// engine-on path maps incrementally through the cut database).
#[test]
fn optimize_transaction_engine_on_vs_off_is_byte_identical() {
    let g = random_aig_with(43, 9, 140, 4);
    // In-place-heavy action mix over the full widened vocabulary
    // (`rw`/`rwz`/`rf`/`rfz`/`b`/`rsb` all plan in place; refactor
    // and balance append fresh replacement cones), with whole-graph
    // moves interleaved to force engine rebuilds.
    let actions = vec![
        Recipe(vec![Transform::Rewrite]),
        Recipe(vec![Transform::RewriteZero]),
        Recipe(vec![Transform::Refactor]),
        Recipe(vec![Transform::RefactorZero]),
        Recipe(vec![Transform::Balance]),
        Recipe(vec![Transform::Resub]),
        Recipe(vec![Transform::Sweep]),
        Recipe(vec![Transform::Resub, Transform::Rewrite]),
    ];
    for seed in [5u64, 29, 71] {
        let opts = SaOptions {
            iterations: 30,
            seed,
            ..SaOptions::default()
        };
        let mut on_ctx = EvalContext::new();
        let mut off_ctx = EvalContext::new();
        off_ctx.set_inplace_transactions(false);
        let on = optimize_with(&g, &mut ProxyCost, &actions, &opts, &mut on_ctx);
        let off = optimize_with(&g, &mut ProxyCost, &actions, &opts, &mut off_ctx);
        assert_eq!(
            to_ascii(&on.best),
            to_ascii(&off.best),
            "seed {seed}: best AIG must not depend on the engine"
        );
        assert_eq!(on.history, off.history, "seed {seed}");
        assert_eq!(on.evaluated, off.evaluated, "seed {seed}");
        assert_eq!(on.accepted, off.accepted, "seed {seed}");
    }

    // Ground truth: the engine path exercises incremental mapping
    // (cut-database cuts + DP-row reuse) against full remapping.
    let lib = cells::sky130ish();
    let opts = SaOptions {
        iterations: 12,
        seed: 9,
        ..SaOptions::default()
    };
    let mut on_ctx = EvalContext::new();
    let mut off_ctx = EvalContext::new();
    off_ctx.set_inplace_transactions(false);
    let on = optimize_with(
        &g,
        &mut saopt::GroundTruthCost::new(&lib),
        &actions,
        &opts,
        &mut on_ctx,
    );
    let off = optimize_with(
        &g,
        &mut saopt::GroundTruthCost::new(&lib),
        &actions,
        &opts,
        &mut off_ctx,
    );
    assert_eq!(to_ascii(&on.best), to_ascii(&off.best), "ground truth");
    assert_eq!(on.history, off.history);
    assert_eq!(on.evaluated, off.evaluated);
}

/// The speculative batch engine on vs off, riding on the transaction
/// engine's action mix: the full `SaResult` must be byte-identical
/// under the proxy evaluator across seeds and under the ground-truth
/// evaluator (forked mappers pricing windowed moves through the
/// incremental `evaluate_edit` path). The `spec` counters are the one
/// field outside the contract — present iff the run speculated.
#[test]
fn optimize_speculation_on_vs_off_is_byte_identical() {
    let g = random_aig_with(43, 9, 140, 4);
    let actions = vec![
        Recipe(vec![Transform::Rewrite]),
        Recipe(vec![Transform::RewriteZero]),
        Recipe(vec![Transform::Refactor]),
        Recipe(vec![Transform::RefactorZero]),
        Recipe(vec![Transform::Balance]),
        Recipe(vec![Transform::Resub]),
        Recipe(vec![Transform::Sweep]),
        Recipe(vec![Transform::Resub, Transform::Rewrite]),
    ];
    for seed in [5u64, 29, 71] {
        let opts = SaOptions {
            iterations: 30,
            seed,
            ..SaOptions::default()
        };
        let off = optimize_with(&g, &mut ProxyCost, &actions, &opts, &mut EvalContext::new());
        let opts = SaOptions {
            speculation: Some(saopt::SpeculationOptions::default()),
            ..opts
        };
        let on = optimize_with(&g, &mut ProxyCost, &actions, &opts, &mut EvalContext::new());
        assert!(on.spec.is_some(), "seed {seed}: speculation must engage");
        assert!(off.spec.is_none());
        assert_eq!(
            to_ascii(&on.best),
            to_ascii(&off.best),
            "seed {seed}: best AIG must not depend on speculation"
        );
        assert_eq!(on.history, off.history, "seed {seed}");
        assert_eq!(on.evaluated, off.evaluated, "seed {seed}");
        assert_eq!(on.accepted, off.accepted, "seed {seed}");
    }

    let lib = cells::sky130ish();
    let opts = SaOptions {
        iterations: 12,
        seed: 9,
        ..SaOptions::default()
    };
    let off = optimize_with(
        &g,
        &mut saopt::GroundTruthCost::new(&lib),
        &actions,
        &opts,
        &mut EvalContext::new(),
    );
    let opts = SaOptions {
        speculation: Some(saopt::SpeculationOptions { batch: 4 }),
        ..opts
    };
    let on = optimize_with(
        &g,
        &mut saopt::GroundTruthCost::new(&lib),
        &actions,
        &opts,
        &mut EvalContext::new(),
    );
    assert!(on.spec.is_some(), "ground truth must fork");
    assert_eq!(to_ascii(&on.best), to_ascii(&off.best), "ground truth");
    assert_eq!(on.history, off.history);
    assert_eq!(on.evaluated, off.evaluated);
}

/// A cache pre-warmed by *other* graphs must not perturb results:
/// recipes applied through a dirty shared cache equal the uncached
/// application, byte for byte.
#[test]
fn warm_shared_cache_does_not_change_transform_outputs() {
    let cache = Arc::new(ResynthCache::new());
    // Pollute the cache with structures from unrelated graphs.
    for seed in 200..204u64 {
        let other = random_aig_with(seed, 7, 90, 3);
        let _ = transform::rewrite_with(&other, &cache);
        let _ = transform::refactor_with(&other, &cache);
    }
    assert!(cache.hits() + cache.misses() > 0);

    let g = random_aig_with(77, 8, 110, 4);
    for recipe in [
        Recipe(vec![Transform::Rewrite]),
        Recipe(vec![Transform::RefactorZero, Transform::Balance]),
        Recipe(vec![Transform::Perturb, Transform::RewriteZero]),
    ] {
        let via_cache = recipe.apply_with(&g, &cache);
        let plain = recipe.apply(&g);
        assert_eq!(
            to_ascii(&via_cache),
            to_ascii(&plain),
            "recipe `{recipe}` output depends on cache state"
        );
    }
}

/// `optimize_seeds` (all chains share one cache) must reproduce
/// serial per-seed runs exactly — the cache-sharing analog of the
/// existing multi-seed determinism test.
#[test]
fn shared_cache_chains_match_serial_runs() {
    let g = random_aig_with(55, 8, 100, 3);
    let actions = recipes();
    let opts = SaOptions {
        iterations: 6,
        ..SaOptions::default()
    };
    let seeds = [2u64, 71, 828];
    let chains = saopt::optimize_seeds(&g, || ProxyCost, &actions, &opts, &seeds);
    for (&seed, res) in seeds.iter().zip(&chains) {
        let serial = optimize(&g, &mut ProxyCost, &actions, &SaOptions { seed, ..opts });
        assert_eq!(to_ascii(&res.best), to_ascii(&serial.best), "seed {seed}");
        assert_eq!(res.history, serial.history, "seed {seed}");
    }
}

/// The cache actually caches: a second identical run over a warm
/// shared cache performs no new synthesis (misses stay flat) and
/// still produces identical output.
#[test]
fn second_run_is_all_hits() {
    let g = random_aig_with(99, 8, 120, 3);
    let cache = Arc::new(ResynthCache::new());
    let first = transform::rewrite_with(&g, &cache);
    let misses_after_first = cache.misses();
    assert!(misses_after_first > 0, "first run must synthesize");
    let second = transform::rewrite_with(&g, &cache);
    assert_eq!(
        cache.misses(),
        misses_after_first,
        "second identical run must be served entirely from the cache"
    );
    assert!(cache.hits() >= misses_after_first);
    assert_eq!(to_ascii(&first), to_ascii(&second));
}
