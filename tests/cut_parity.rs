//! Cut-enumeration parity on the real benchmark suite: the
//! signature-pruned, allocation-free [`enumerate_cuts`] must keep
//! exactly the same surviving cut sets as the naive reference
//! implementation on every benchgen design the flows actually
//! process — same leaves, same order, same truth tables.

use aig::cut::{enumerate_cuts, enumerate_cuts_naive};

fn assert_parity(design: &benchgen::Design, k: usize, max_cuts: usize) {
    let fast = enumerate_cuts(&design.aig, k, max_cuts);
    let naive = enumerate_cuts_naive(&design.aig, k, max_cuts);
    let mut total = 0usize;
    for id in design.aig.node_ids() {
        let f = fast.cuts(id);
        let n = &naive[id as usize][..];
        assert_eq!(
            f, n,
            "{}: node {id} cut sets diverge (k={k}, max_cuts={max_cuts})",
            design.name
        );
        total += f.len();
    }
    assert_eq!(fast.num_cuts(), total);
    assert!(
        total > design.aig.num_ands(),
        "{}: suspiciously few cuts ({total})",
        design.name
    );
}

/// Small designs at the rewriting configuration (k=4) and the
/// refactoring configuration (k=6).
#[test]
fn parity_on_small_designs() {
    for design in [benchgen::ex00(), benchgen::ex68(), benchgen::multiplier(5)] {
        assert_parity(&design, 4, 8);
        assert_parity(&design, 6, 5);
    }
}

/// A large design at the mapper configuration; this is the hot
/// configuration of the SA inner loop.
#[test]
fn parity_on_large_design() {
    let design = benchgen::ex28();
    assert_parity(&design, 4, 8);
}

/// The perturbation configuration (k=5) used by datagen walks.
#[test]
fn parity_on_datagen_configuration() {
    let design = benchgen::ex02();
    assert_parity(&design, 5, 6);
}
