//! Cross-crate integration tests: the full pipeline from benchmark
//! generation through transformation, mapping, timing, feature
//! extraction, model training and SA optimization.

use aig_timing::prelude::*;
use experiments::datagen::{generate_variants, label_variants, labeled_set, Target};
use saopt::CostEvaluator;

/// Every suite design must survive the full flow: optimize → map →
/// STA, with function preserved (checked by random simulation, and
/// exhaustively against the netlist on the small designs).
#[test]
fn whole_suite_optimizes_maps_and_times() {
    let lib = sky130ish();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let script = Recipe(vec![Transform::Balance, Transform::Rewrite]);
    for design in iwls_like_suite() {
        let opt = script.apply(&design.aig);
        assert!(
            aig::sim::equiv_random(&design.aig, &opt, 8, 42).expect("same interface"),
            "{}: optimization changed function",
            design.name
        );
        assert!(
            opt.num_live_ands() <= design.aig.num_live_ands(),
            "{}: optimization grew the design",
            design.name
        );
        let nl = mapper.map(&opt).expect("mappable");
        let (delay, area) = sta::delay_and_area(&nl, &lib);
        assert!(
            delay > 0.0 && area > 0.0,
            "{}: degenerate timing",
            design.name
        );
    }
}

/// Mapped netlists implement the same function as their AIGs — checked
/// bit-for-bit on every input pattern for the small designs.
#[test]
fn mapping_is_functionally_exact_on_small_designs() {
    let lib = sky130ish();
    let mapper = Mapper::new(&lib, MapOptions::default());
    for design in [benchgen::ex68(), benchgen::ex00()] {
        let n = design.aig.num_inputs();
        assert!(n <= 16);
        let nl = mapper.map(&design.aig).expect("mappable");
        let sim = aig::sim::SimTable::exhaustive(&design.aig).expect("small");
        // Sample every 7th pattern to keep runtime bounded.
        for m in (0..(1usize << n)).step_by(7) {
            let pis: Vec<bool> = (0..n).map(|i| m >> i & 1 == 1).collect();
            let got = nl.eval(&lib, &pis);
            for (k, o) in design.aig.outputs().iter().enumerate() {
                assert_eq!(
                    got[k],
                    sim.lit_bit(o.lit, m),
                    "{}: output {k} pattern {m}",
                    design.name
                );
            }
        }
    }
}

/// Train a delay model on one design's variants and check it beats a
/// trivial mean predictor on held-out variants of the same design.
#[test]
fn model_beats_mean_predictor() {
    let lib = sky130ish();
    let design = benchgen::ex00();
    let set = labeled_set(&design, 120, 11, &lib);
    let ds = set.to_dataset(Target::Delay);
    let (train, test) = ds.shuffle_split(0.8, 3);
    let model = gbt::train(
        &train,
        &GbtParams {
            num_rounds: 150,
            ..GbtParams::default()
        },
    );
    let preds = model.predict_all(&test);
    let truths: Vec<f64> = test.labels().iter().map(|&v| f64::from(v)).collect();
    let model_rmse = gbt::rmse(&preds, &truths);
    let mean = f64::from(train.label_mean());
    let mean_rmse = gbt::rmse(&vec![mean; truths.len()], &truths);
    assert!(
        model_rmse < 0.8 * mean_rmse,
        "model rmse {model_rmse:.1} not clearly better than mean baseline {mean_rmse:.1}"
    );
}

/// The three cost evaluators rank a fast/small pair consistently:
/// ground truth and ML agree that the balanced version of a chain is
/// faster than the chain.
#[test]
fn evaluators_agree_on_obvious_comparisons() {
    let lib = sky130ish();
    // Deep chain vs balanced tree of the same function.
    let mut chain = Aig::new();
    let mut acc = chain.add_input();
    for _ in 0..23 {
        let x = chain.add_input();
        acc = chain.and(acc, x);
    }
    chain.add_output(acc, None::<&str>);
    let balanced = balance(&chain);

    let mut gt = GroundTruthCost::new(&lib);
    let slow = gt.evaluate(&chain);
    let fast = gt.evaluate(&balanced);
    assert!(
        fast.delay < slow.delay * 0.7,
        "balancing must clearly reduce mapped delay: {} vs {}",
        fast.delay,
        slow.delay
    );

    let mut proxy = ProxyCost;
    assert!(proxy.evaluate(&balanced).delay < proxy.evaluate(&chain).delay);
}

/// SA under the ground-truth evaluator improves mapped delay of a
/// deliberately unbalanced circuit, and the result stays equivalent.
#[test]
fn ground_truth_sa_improves_real_delay() {
    let lib = sky130ish();
    let mut g = Aig::new();
    let mut acc = g.add_input();
    for _ in 0..19 {
        let x = g.add_input();
        acc = g.and(acc, x);
    }
    g.add_output(acc, None::<&str>);

    let mut gt = GroundTruthCost::new(&lib);
    let before = gt.evaluate(&g);
    let res = optimize(
        &g,
        &mut gt,
        &recipes(),
        &SaOptions {
            iterations: 10,
            weight_delay: 1.0,
            weight_area: 0.0,
            seed: 2,
            ..SaOptions::default()
        },
    );
    assert!(
        res.best_metrics.delay < before.delay,
        "SA should find the balanced form: {} -> {}",
        before.delay,
        res.best_metrics.delay
    );
    assert!(aig::sim::equiv_random(&g, &res.best, 8, 5).expect("iface"));
}

/// Labels from the parallel labeling path agree with a sequential
/// ground-truth evaluator (determinism across threads).
#[test]
fn parallel_labels_match_sequential() {
    let lib = sky130ish();
    let design = benchgen::ex68();
    let variants = generate_variants(&design.aig, 8, 21);
    let par = label_variants(&variants, &lib);
    let mut gt = GroundTruthCost::new(&lib);
    for (v, &(d, a)) in variants.iter().zip(&par) {
        let m = gt.evaluate(v);
        assert_eq!(m.delay, d);
        assert_eq!(m.area, a);
    }
}

/// The facade crate's prelude exposes a working end-to-end path.
#[test]
fn prelude_covers_the_basic_flow() {
    let mut g = Aig::new();
    let a = g.add_input();
    let b = g.add_input();
    let f = g.and(a, b);
    g.add_output(f, Some("y"));
    let lib = sky130ish();
    let nl = Mapper::new(&lib, MapOptions::default())
        .map(&g)
        .expect("mappable");
    let report = sta::analyze(&nl, &lib);
    assert!(report.max_delay_ps > 0.0);
    let fv = features::extract(&g);
    assert_eq!(fv[features::NODE_COUNT], 1.0);
}
