//! Serial-vs-parallel simulation dispatch equality, driven through
//! the public API by toggling `AIG_THREADS`.
//!
//! This lives in its own test binary on purpose: the env var is
//! process-global, and here the toggling test is the only test in
//! the process, so no sibling test can observe a mid-flight value.
//! The graphs are sized to genuinely cross the dispatch thresholds
//! (asserted below), so under `AIG_THREADS=4` the parallel
//! strategies actually run. (The propagation strategies are
//! additionally compared directly in `aig`'s sim unit tests.)

use aig::sim::SimTable;

mod common;
use common::random_aig_with;

/// Restores the pre-test `AIG_THREADS` value even if an assert
/// unwinds mid-loop.
struct EnvGuard(Option<String>);

impl Drop for EnvGuard {
    fn drop(&mut self) {
        match self.0.take() {
            Some(v) => std::env::set_var("AIG_THREADS", v),
            None => std::env::remove_var("AIG_THREADS"),
        }
    }
}

/// Simulation tables must be bit-identical whether propagation runs
/// serially (`AIG_THREADS=1`) or multi-threaded (`AIG_THREADS=4`),
/// for both wide tables (word-parallel strategy) and narrow tables
/// (levelized node-parallel strategy).
#[test]
fn simulation_independent_of_parallel_dispatch() {
    let _guard = EnvGuard(std::env::var("AIG_THREADS").ok());
    // (seed, words, node target) sized past PAR_MIN_WORK on both
    // sides of the PAR_MIN_WORDS split.
    let wide_words = 2 * SimTable::PAR_MIN_WORDS;
    let narrow_words = SimTable::PAR_MIN_WORDS / 2;
    let cases = [
        (1u64, wide_words, SimTable::PAR_MIN_WORK / wide_words * 2),
        (
            2u64,
            narrow_words,
            SimTable::PAR_MIN_WORK / narrow_words * 2,
        ),
    ];
    for (seed, words, nodes) in cases {
        // Strashing dedupes some ANDs; overshoot then verify the
        // dispatch threshold is genuinely crossed.
        let g = random_aig_with(seed, 24, nodes * 3 / 2, 8);
        assert!(
            g.num_nodes() * words >= SimTable::PAR_MIN_WORK,
            "test graph too small to engage the parallel path: {} nodes x {words} words",
            g.num_nodes()
        );
        std::env::set_var("AIG_THREADS", "1");
        let serial = SimTable::random(&g, words, seed);
        std::env::set_var("AIG_THREADS", "4");
        let parallel = SimTable::random(&g, words, seed);
        for id in g.node_ids() {
            assert_eq!(
                serial.node_row(id),
                parallel.node_row(id),
                "words {words}: node {id} rows diverge serial vs 4 threads"
            );
        }
    }
}
