//! Differential suite for the footprint-bounded incremental mapper:
//! [`Mapper::map_incremental`] / [`Mapper::sync_design`] with the
//! per-row DP cutoff (CutDb version counters + leaf bit-equality)
//! must produce netlists **bit-identical** to `Mapper::map` across
//! random in-place edit walks with rollbacks — on random graphs and
//! on every benchgen design — while recomputing only rows inside the
//! edit's footprint. The cutoff-off context (the old watermark
//! recompute) runs alongside as a second oracle.

use aig::cut::CutDb;
use aig::incremental::{IncrementalAnalysis, Transaction};
use aig::{Aig, Lit, NodeId};
use cells::sky130ish;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use techmap::{MapContext, MapError, MapOptions, Mapper};

mod common;
use common::random_aig_with;

/// Deep netlist identity: the derived `Debug` form covers drivers,
/// gates (cells + pin wiring), inputs, and output ports.
fn assert_same_netlist(a: &techmap::Netlist, b: &techmap::Netlist, what: &str) {
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "{what}");
}

/// Asserts two mapping outcomes (netlist or error) are identical.
fn assert_same_outcome(
    incr: Result<techmap::Netlist, MapError>,
    fresh: Result<techmap::Netlist, MapError>,
    what: &str,
) {
    match (incr, fresh) {
        (Ok(a), Ok(b)) => assert_same_netlist(&a, &b, what),
        (Err(MapError::NoMatch { node: a }), Err(MapError::NoMatch { node: b })) => {
            assert_eq!(a, b, "{what}: error node diverged");
        }
        (a, b) => panic!("{what}: outcome diverged: {a:?} vs {b:?}"),
    }
}

/// Random in-place edit walks with rollbacks, mapping mid-edit and
/// after commit/rollback, with three mappers racing: fresh `map`
/// (oracle), cutoff-on incremental, cutoff-off incremental (the old
/// watermark recompute). All three must agree bit for bit at every
/// step — including on `NoMatch` errors from edits that leave a live
/// constant node behind.
fn drive_walk(g0: &Aig, seed: u64, steps: usize) {
    let lib = sky130ish();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = g0.clone();
    let mut inc = IncrementalAnalysis::new(&g);
    let mut db = CutDb::new(4, 8);
    db.build(&g);
    let mut ctx_on = MapContext::new();
    let mut ctx_off = MapContext::new();
    ctx_off.set_row_cutoff(false);
    assert!(ctx_on.row_cutoff() && !ctx_off.row_cutoff());
    // Seed both contexts' rows (and the cutoff context's version
    // snapshot) with the unedited graph.
    let first_on = mapper.map_incremental(&mut ctx_on, &g, &db, 0);
    let first_off = mapper.map_incremental(&mut ctx_off, &g, &db, 0);
    assert_same_outcome(first_on, mapper.map(&g), "seed");
    assert_same_outcome(first_off, mapper.map(&g), "seed (cutoff off)");
    // A second pass readies the cutoff context's snapshot (the first
    // incremental call after a fresh context is the fallback sweep).
    let _ = mapper.map_incremental(&mut ctx_on, &g, &db, NodeId::MAX);

    for step in 0..steps {
        db.begin_edit();
        let mut txn = Transaction::begin(&mut g, &mut inc);
        for _ in 0..rng.gen_range(1..4) {
            let ands: Vec<NodeId> = txn.aig().and_ids().collect();
            if ands.is_empty() {
                break;
            }
            let node = ands[rng.gen_range(0..ands.len())];
            let with = Lit::new(rng.gen_range(0..node), rng.gen());
            txn.substitute(node, with);
            db.invalidate(txn.aig(), txn.analysis(), txn.analysis().last_dirty());
        }
        let since = txn.min_touched();
        // Mid-edit mapping: the cutoff context snapshots speculative
        // versions here — a following rollback must still be
        // detected (bumped values are never reused).
        let fresh_mid = mapper.map(txn.aig());
        let incr_mid = mapper.map_incremental(&mut ctx_on, txn.aig(), &db, since);
        let off_mid = mapper.map_incremental(&mut ctx_off, txn.aig(), &db, since);
        assert_same_outcome(incr_mid, mapper.map(txn.aig()), &format!("step {step} mid"));
        assert_same_outcome(off_mid, fresh_mid, &format!("step {step} mid (cutoff off)"));
        if rng.gen_bool(0.5) {
            txn.commit();
            db.commit_edit();
        } else {
            txn.rollback();
            db.rollback_edit();
        }
        // Post-outcome remap with the same watermark (the SA loop's
        // resync pattern after a reject).
        let fresh = mapper.map(&g);
        let incr = mapper.map_incremental(&mut ctx_on, &g, &db, since);
        let off = mapper.map_incremental(&mut ctx_off, &g, &db, since);
        assert_same_outcome(incr, mapper.map(&g), &format!("step {step} post"));
        assert_same_outcome(off, fresh, &format!("step {step} post (cutoff off)"));
        db.assert_matches_fresh(&g);
    }
}

#[test]
fn edit_walks_bit_identical_on_random_graphs() {
    for seed in 0..5u64 {
        let g = random_aig_with(0xD9 ^ seed, 7, 100, 3);
        drive_walk(&g, 0xC0DE ^ seed, 10);
    }
}

/// Every benchgen design: realistic structures, fewer steps to bound
/// runtime.
#[test]
fn edit_walks_bit_identical_on_benchgen_designs() {
    for design in benchgen::iwls_like_suite() {
        drive_walk(&design.aig, 0xFACE, 3);
    }
}

/// Windowed edits on a large design: the cutoff's recomputed-row
/// counter must stay strictly below the watermark-to-top row count
/// (what the old path always paid), and a no-op resync must recompute
/// nothing.
#[test]
fn recompute_count_is_footprint_bounded_on_windowed_edits() {
    let lib = sky130ish();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let design = benchgen::ex28();
    let mut g = design.aig.clone();
    let mut inc = IncrementalAnalysis::new(&g);
    let mut db = CutDb::new(4, 8);
    db.build(&g);
    let mut ctx = MapContext::new();
    mapper
        .map_incremental(&mut ctx, &g, &db, 0)
        .expect("mappable");

    let mut rng = SmallRng::seed_from_u64(7);
    let ands: Vec<NodeId> = g.and_ids().collect();
    let mut exercised = 0usize;
    for round in 0..12 {
        // A windowed edit: substitute a mid-graph node by a nearby
        // earlier literal, so the watermark sits well below the top.
        let k = rng.gen_range(ands.len() / 4..ands.len() * 3 / 4);
        let node = ands[k];
        let with = Lit::new(ands[k - 1].min(node - 1), rng.gen());
        db.begin_edit();
        let mut txn = Transaction::begin(&mut g, &mut inc);
        txn.substitute(node, with);
        db.invalidate(txn.aig(), txn.analysis(), txn.analysis().last_dirty());
        let since = txn.min_touched();
        let rows_above = txn.aig().and_ids().filter(|&id| id >= since).count();
        match mapper.map_incremental(&mut ctx, txn.aig(), &db, since) {
            Ok(nl) => {
                assert_same_netlist(
                    &nl,
                    &mapper.map(txn.aig()).expect("mappable"),
                    &format!("round {round}"),
                );
                assert!(
                    ctx.recomputed_rows() < rows_above,
                    "round {round}: recomputed {} rows, watermark-to-top is {rows_above}",
                    ctx.recomputed_rows()
                );
                exercised += 1;
                // A no-op resync over the unchanged graph recomputes
                // nothing at all.
                mapper
                    .map_incremental(&mut ctx, txn.aig(), &db, since)
                    .expect("mappable");
                assert_eq!(ctx.recomputed_rows(), 0, "round {round}: no-op resync");
                txn.commit();
                db.commit_edit();
            }
            Err(MapError::NoMatch { .. }) => {
                // The raw substitution left a live constant node; not
                // the footprint scenario under test — roll it back.
                txn.rollback();
                db.rollback_edit();
                let restored = mapper
                    .map_incremental(&mut ctx, &g, &db, since)
                    .expect("restored graph is mappable");
                assert_same_netlist(&restored, &mapper.map(&g).expect("mappable"), "restored");
            }
            Err(e) => panic!("round {round}: unexpected error {e}"),
        }
    }
    assert!(exercised >= 4, "too few committed windowed edits");
}

/// Committed fresh-cone walks: windowed in-place passes that append
/// replacement cones and splice them into earlier readers, leaving
/// the graph non-topological after commit. Three mappers race as in
/// `drive_walk` — fresh `map` (oracle), cutoff-on, cutoff-off — and a
/// persistent [`techmap::MappedDesign`] + incremental sizing/STA
/// pipeline rides along: after the warm-up sync, appended-only growth
/// must take the in-place grow path (never a rebuild) and its priced
/// delay/area must stay bit-identical to the fresh full pipeline.
fn drive_append_walk(g0: &Aig, seed: u64, steps: usize) -> bool {
    let lib = sky130ish();
    let mapper = Mapper::new(&lib, MapOptions::default());
    if mapper.map(g0).is_err() {
        // Random seeds can leave a live constant node (unmappable by
        // construction); the design pipeline under test requires a
        // mappable start.
        return false;
    }
    let sizing = techmap::SizingTable::new(&lib);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = g0.clone();
    let mut inc = IncrementalAnalysis::new(&g);
    let mut db = CutDb::new(4, 8);
    db.build(&g);
    let mut ctx_on = MapContext::new();
    let mut ctx_off = MapContext::new();
    ctx_off.set_row_cutoff(false);
    mapper
        .map_incremental(&mut ctx_on, &g, &db, 0)
        .expect("mappable");
    mapper
        .map_incremental(&mut ctx_off, &g, &db, 0)
        .expect("mappable");
    // Ready the cutoff context's version snapshot.
    mapper
        .map_incremental(&mut ctx_on, &g, &db, NodeId::MAX)
        .expect("mappable");
    let mut ctx_d = MapContext::new();
    let mut design = techmap::MappedDesign::new();
    let mut ista = sta::IncrementalSta::new();
    let mut sta_seeds: Vec<techmap::GateId> = Vec::new();
    mapper
        .sync_design(&mut ctx_d, &g, &db, 0, &mut design)
        .expect("mappable");
    design.finish_full(&sizing);
    ista.build(design.netlist(), &lib, design.topo_keys());

    let cache = transform::ResynthCache::new();
    let mut saw_forward = false;
    for step in 0..steps {
        let n = g.num_nodes() as u32;
        let start = rng.gen_range(0..n);
        db.begin_edit();
        let mut txn = Transaction::begin(&mut g, &mut inc);
        match step % 3 {
            0 => {
                transform::balance_inplace_window(&mut txn, &mut db, start, 48, None);
            }
            1 => {
                transform::resynth_inplace_window(
                    &mut txn,
                    &mut db,
                    &cache,
                    transform::InplaceMode::ZeroCost,
                    true,
                    start,
                    64,
                    None,
                );
            }
            _ => {
                transform::resub_inplace_window(&mut txn, &mut db, start, 48, None);
            }
        }
        let since = txn.min_touched();
        // SA never commits a move it could not price: a window that
        // left a live unmatchable node is rolled back (the reject
        // path — which also exercises append rollback against the
        // cached topo index), everything else commits.
        if mapper.map(txn.aig()).is_ok() {
            txn.commit();
            db.commit_edit();
        } else {
            txn.rollback();
            db.rollback_edit();
        }
        saw_forward |= !g.is_topological();
        let fresh = mapper.map(&g);
        let incr = mapper.map_incremental(&mut ctx_on, &g, &db, since);
        let off = mapper.map_incremental(&mut ctx_off, &g, &db, since);
        assert_same_outcome(incr, mapper.map(&g), &format!("append step {step}"));
        assert_same_outcome(off, fresh, &format!("append step {step} (cutoff off)"));
        db.assert_matches_fresh(&g);
        // The design follows through the in-place grow path.
        let rebuilt = mapper
            .sync_design(&mut ctx_d, &g, &db, since, &mut design)
            .expect("mappable");
        assert!(
            !rebuilt,
            "append step {step}: appended-only growth must extend in place"
        );
        sta_seeds.clear();
        design.finish_incremental(&sizing, &mut sta_seeds);
        ista.update(design.netlist(), &lib, design.topo_keys(), &sta_seeds);
        let pd = ista.max_delay_ps(design.netlist());
        let pa = design.netlist().area_um2(&lib);
        let mut full = mapper.map(&g).expect("mappable");
        techmap::resize_greedy(&mut full, &lib, 2);
        let (fd, fa) = sta::delay_and_area(&full, &lib);
        assert!(
            pd.to_bits() == fd.to_bits() && pa.to_bits() == fa.to_bits(),
            "append step {step}: grown design diverged: {pd}/{pa} vs {fd}/{fa}"
        );
    }
    saw_forward
}

#[test]
fn append_walks_bit_identical_on_random_graphs() {
    let mut forward_walks = 0usize;
    for seed in 0..6u64 {
        let g = random_aig_with(0xA9 ^ seed, 7, 110, 3);
        if drive_append_walk(&g, 0xBEEF ^ seed, 9) {
            forward_walks += 1;
        }
    }
    assert!(
        forward_walks >= 2,
        "too few walks committed forward references ({forward_walks})"
    );
}

#[test]
fn append_walks_bit_identical_on_benchgen_designs() {
    let mut forward_walks = 0usize;
    for design in benchgen::iwls_like_suite().into_iter().take(4) {
        if drive_append_walk(&design.aig, 0xFEED, 4) {
            forward_walks += 1;
        }
    }
    assert!(
        forward_walks >= 1,
        "no benchgen walk committed a forward reference"
    );
}

/// On a graph carrying committed forward references the cutoff must
/// stay active: recomputed rows strictly below the effective
/// (forward-clamped) watermark-to-top row count — the fallback the
/// old `is_topological` guard always forced.
#[test]
fn recompute_count_stays_footprint_bounded_under_forward_refs() {
    let lib = sky130ish();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let design = benchgen::ex28();
    let mut g = design.aig.clone();
    let mut inc = IncrementalAnalysis::new(&g);
    let mut db = CutDb::new(4, 8);
    db.build(&g);
    let mut ctx = MapContext::new();
    mapper
        .map_incremental(&mut ctx, &g, &db, 0)
        .expect("mappable");
    mapper
        .map_incremental(&mut ctx, &g, &db, NodeId::MAX)
        .expect("mappable");

    let mut rng = SmallRng::seed_from_u64(19);
    let cache = transform::ResynthCache::new();
    let mut exercised = 0usize;
    for round in 0..12 {
        let n = g.num_nodes() as u32;
        let start = rng.gen_range(n / 4..n);
        db.begin_edit();
        let mut txn = Transaction::begin(&mut g, &mut inc);
        transform::resynth_inplace_window(
            &mut txn,
            &mut db,
            &cache,
            transform::InplaceMode::ZeroCost,
            true,
            start,
            96,
            None,
        );
        let since = txn.min_touched();
        txn.commit();
        db.commit_edit();
        if since as usize >= g.num_nodes() {
            continue; // window found nothing to do
        }
        // `dp_update` clamps the watermark below the first forward id
        // — that clamped suffix is what the watermark fallback would
        // recompute wholesale.
        let eff = since.min(g.forward_ids().next().unwrap_or(NodeId::MAX));
        let rows_above = g.and_ids().filter(|&id| id >= eff).count();
        let nl = mapper
            .map_incremental(&mut ctx, &g, &db, since)
            .expect("mappable");
        assert_same_netlist(
            &nl,
            &mapper.map(&g).expect("mappable"),
            &format!("forward round {round}"),
        );
        if !g.is_topological() {
            assert!(
                ctx.recomputed_rows() < rows_above,
                "round {round}: recomputed {} rows, clamped watermark-to-top is {rows_above}",
                ctx.recomputed_rows()
            );
            exercised += 1;
        }
    }
    assert!(exercised >= 4, "too few forward-carrying rounds");
}

/// A stale cut database (missed `build`/`sync_appends`) must surface
/// as a typed error from the incremental entry points — in *every*
/// build profile. This used to be a `debug_assert_eq!`, i.e. release
/// builds would silently map through stale spans; the test pins the
/// release-mode behavior (it does not rely on `debug_assertions`).
#[test]
fn stale_cutdb_is_a_typed_error_not_a_debug_assert() {
    let lib = sky130ish();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let mut g = random_aig_with(42, 6, 40, 2);
    let mut db = CutDb::new(4, 8);
    db.build(&g);
    let tracked = g.num_nodes();
    // Grow the graph behind the database's back.
    let a = Lit::new(g.inputs()[0], false);
    let b = Lit::new(*g.inputs().last().unwrap(), true);
    g.and(a, b);
    let mut ctx = MapContext::new();
    match mapper.map_incremental(&mut ctx, &g, &db, 0) {
        Err(MapError::StaleCuts {
            db_nodes,
            graph_nodes,
        }) => {
            assert_eq!(db_nodes, tracked);
            assert_eq!(graph_nodes, g.num_nodes());
        }
        other => panic!("expected StaleCuts, got {other:?}"),
    }
    // The error is recoverable: syncing the database makes the same
    // call succeed and match the fresh map.
    db.sync_appends(&g);
    let incr = mapper
        .map_incremental(&mut ctx, &g, &db, 0)
        .expect("synced db maps");
    assert_same_netlist(&incr, &mapper.map(&g).expect("mappable"), "after sync");
}

/// A `map_incremental` interleaved between two `sync_design` calls
/// must stay visible to the design: the changed-row record
/// accumulates until a design consumes it, so the second sync heals
/// the netlist even though its own `dp_update` is a no-op (rows
/// already current, watermark `NodeId::MAX`).
#[test]
fn sync_design_sees_interleaved_map_incremental_changes() {
    let lib = sky130ish();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let sizing = techmap::SizingTable::new(&lib);
    let g0 = random_aig_with(3100, 8, 120, 3);
    let mut g = g0.clone();
    let mut inc = IncrementalAnalysis::new(&g);
    let mut db = CutDb::new(4, 8);
    db.build(&g);
    let mut ctx = MapContext::new();
    let mut design = techmap::MappedDesign::new();
    let mut ista = sta::IncrementalSta::new();
    let mut sta_seeds: Vec<techmap::GateId> = Vec::new();
    mapper
        .sync_design(&mut ctx, &g, &db, 0, &mut design)
        .expect("mappable");
    design.finish_full(&sizing);
    ista.build(design.netlist(), &lib, design.topo_keys());

    let mut rng = SmallRng::seed_from_u64(0x5EED);
    let mut exercised = 0usize;
    for _ in 0..40 {
        if exercised >= 6 {
            break;
        }
        // Commit an edit that keeps the graph mappable AND actually
        // changes the mapped netlist (random nodes are often dead —
        // a cover-neutral edit cannot exercise the design patch), so
        // prefer nodes in the live cover.
        let mut live = vec![false; g.num_nodes()];
        let mut stack: Vec<NodeId> = g.outputs().iter().map(|o| o.lit.var()).collect();
        while let Some(v) = stack.pop() {
            if !std::mem::replace(&mut live[v as usize], true) && g.is_and(v) {
                let [f0, f1] = g.fanins(v);
                stack.push(f0.var());
                stack.push(f1.var());
            }
        }
        let ands: Vec<NodeId> = g.and_ids().filter(|&id| live[id as usize]).collect();
        if ands.is_empty() {
            break;
        }
        let node = ands[rng.gen_range(0..ands.len())];
        if node == 0 {
            continue;
        }
        let with = Lit::new(rng.gen_range(0..node), rng.gen());
        {
            let mut trial = g.clone();
            let mut tinc = IncrementalAnalysis::new(&trial);
            tinc.substitute(&mut trial, node, with);
            match mapper.map(&trial) {
                Ok(nl) => {
                    let before = mapper.map(&g).expect("mappable");
                    if format!("{nl:?}") == format!("{before:?}") {
                        continue;
                    }
                }
                Err(_) => continue,
            }
        }
        db.begin_edit();
        let mut txn = Transaction::begin(&mut g, &mut inc);
        txn.substitute(node, with);
        db.invalidate(txn.aig(), txn.analysis(), txn.analysis().last_dirty());
        let since = txn.min_touched();
        txn.commit();
        db.commit_edit();
        // Interleaved row refresh that bypasses the design entirely.
        mapper
            .map_incremental(&mut ctx, &g, &db, since)
            .expect("mappable");
        // The design sync's own DP pass now finds nothing to
        // recompute (rows already current) — alternating between the
        // same-watermark re-entry and the O(1) fast path, the design
        // must heal purely from the accumulated changed-row record.
        let resync_since = if exercised.is_multiple_of(2) {
            since
        } else {
            NodeId::MAX
        };
        let rebuilt = mapper
            .sync_design(&mut ctx, &g, &db, resync_since, &mut design)
            .expect("mappable");
        // Price the patched design exactly like
        // `GroundTruthCost::evaluate_edit` (full sizing capture only
        // on rebuilds; incremental sizing + STA update on patches —
        // the design's slots are not id-topological, so STA goes
        // through the incremental engine + topo keys).
        if rebuilt {
            design.finish_full(&sizing);
            ista.build(design.netlist(), &lib, design.topo_keys());
        } else {
            sta_seeds.clear();
            design.finish_incremental(&sizing, &mut sta_seeds);
            ista.update(design.netlist(), &lib, design.topo_keys(), &sta_seeds);
        }
        let pd = ista.max_delay_ps(design.netlist());
        let pa = design.netlist().area_um2(&lib);
        let mut fresh = mapper.map(&g).expect("mappable");
        techmap::resize_greedy(&mut fresh, &lib, 2);
        let (fd, fa) = sta::delay_and_area(&fresh, &lib);
        assert!(
            pd.to_bits() == fd.to_bits() && pa.to_bits() == fa.to_bits(),
            "patched design diverged after interleaved map: {pd}/{pa} vs {fd}/{fa}"
        );
        exercised += 1;
    }
    assert!(exercised >= 4, "too few committed edits");
}

/// Switching a context between two independent `CutDb` instances must
/// not let version values of the old database masquerade as the new
/// one's: the fallback sweep re-snapshots the *whole* range (not just
/// `[since, n)`), so a later cutoff call can never compare a row
/// against another database's numerically colliding version value.
/// This drives the exact switch sequence — the colliding values are
/// engineered below (each database assigns `x` its second counter
/// value) — and asserts bit-identity; the direct wrong-skip
/// additionally requires the colliding row to carry no other dirty
/// signal, so the full-range snapshot is the guarantee under test.
#[test]
fn snapshot_is_not_reattributed_across_databases() {
    let lib = sky130ish();
    let mapper = Mapper::new(&lib, MapOptions::default());
    // x = AND(u, v) with u, v single-consumer helpers, plus logic
    // above x so the database-switch call can use a high watermark.
    let mut g = Aig::new();
    let a = g.add_input();
    let b = g.add_input();
    let c = g.add_input();
    let d = g.add_input();
    let u = g.and(a, b);
    let v = g.and(c, d);
    let x = g.and(u, v);
    let mut top = x;
    for _ in 0..6 {
        let t = g.xor(a, d);
        top = g.and(top, t);
    }
    g.add_output(top, None::<&str>);
    let high = top.var();

    let mut inc = IncrementalAnalysis::new(&g);
    let mut ctx = MapContext::new();
    let mut db_a = CutDb::new(4, 8);
    db_a.build(&g);
    mapper
        .map_incremental(&mut ctx, &g, &db_a, 0)
        .expect("mappable");
    // Edit through A so x's version becomes A's second value (build
    // handed out the first): substitute u by `a` — x is the first
    // (smallest-id) node whose list changes.
    let mut txn = Transaction::begin(&mut g, &mut inc);
    txn.substitute(u.var(), a);
    db_a.invalidate(txn.aig(), txn.analysis(), txn.analysis().last_dirty());
    let since_a = txn.min_touched();
    txn.commit();
    mapper
        .map_incremental(&mut ctx, &g, &db_a, since_a)
        .expect("mappable");
    // Switch to an independently built database with a high
    // watermark: the fallback sweep must claim no knowledge of B's
    // versions below it.
    let mut db_b = CutDb::new(4, 8);
    db_b.build(&g);
    mapper
        .map_incremental(&mut ctx, &g, &db_b, high)
        .expect("mappable");
    // Edit through B so x's version becomes B's second value — the
    // same numeric value A assigned it, which the stale snapshot
    // would mistake for "unchanged".
    let mut txn = Transaction::begin(&mut g, &mut inc);
    txn.substitute(v.var(), c);
    db_b.invalidate(txn.aig(), txn.analysis(), txn.analysis().last_dirty());
    let since_b = txn.min_touched();
    txn.commit();
    let incr = mapper.map_incremental(&mut ctx, &g, &db_b, since_b);
    assert_same_outcome(incr, mapper.map(&g), "after database switch");
}

/// Ground-truth SA evaluation with the cutoff on vs off must be
/// byte-identical (same metrics, same best graph) — the evaluator
/// toggle is `GroundTruthCost::set_dp_row_cutoff`.
#[test]
fn ground_truth_sa_byte_identical_with_cutoff_on_or_off() {
    use saopt::{optimize_with, EvalContext, GroundTruthCost, SaOptions};
    use transform::{Recipe, Transform};
    let g = random_aig_with(777, 8, 110, 4);
    let lib = sky130ish();
    let actions = vec![
        Recipe(vec![Transform::Rewrite]),
        Recipe(vec![Transform::RewriteZero]),
        Recipe(vec![Transform::Balance]),
    ];
    let opts = SaOptions {
        iterations: 10,
        seed: 31,
        ..SaOptions::default()
    };
    let run = |cutoff: bool| {
        let mut eval = GroundTruthCost::new(&lib);
        eval.set_dp_row_cutoff(cutoff);
        let mut ctx = EvalContext::new();
        optimize_with(&g, &mut eval, &actions, &opts, &mut ctx)
    };
    let on = run(true);
    let off = run(false);
    assert_eq!(
        aig::aiger::to_ascii(&on.best),
        aig::aiger::to_ascii(&off.best),
        "best graph diverged"
    );
    assert_eq!(on.evaluated, off.evaluated, "metrics diverged");
    assert_eq!(on.history, off.history, "history diverged");
    assert_eq!(on.accepted, off.accepted);
}
