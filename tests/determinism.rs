//! Determinism guarantees: every pipeline stage is a pure function of
//! its inputs and seeds. Reproducibility is load-bearing for the
//! experiments (paper-vs-measured comparisons) and for the parallel
//! labeling path, which must agree with sequential evaluation.

use aig_timing::prelude::*;
use experiments::datagen::{generate_variants, labeled_set, Target};

fn fingerprint(g: &Aig) -> (usize, usize, u32) {
    (
        g.num_ands(),
        g.num_outputs(),
        aig::analysis::levels(g).max_level,
    )
}

#[test]
fn suite_generation_is_deterministic() {
    let a = iwls_like_suite();
    let b = iwls_like_suite();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(fingerprint(&x.aig), fingerprint(&y.aig), "{}", x.name);
        assert_eq!(
            aig::aiger::to_ascii(&x.aig),
            aig::aiger::to_ascii(&y.aig),
            "{}: bit-identical AIGER expected",
            x.name
        );
    }
}

#[test]
fn transforms_are_deterministic() {
    let d = benchgen::ex68();
    for t in Transform::ALL {
        let a = transform::apply(&d.aig, t);
        let b = transform::apply(&d.aig, t);
        assert_eq!(
            aig::aiger::to_ascii(&a),
            aig::aiger::to_ascii(&b),
            "{t} must be deterministic"
        );
    }
}

#[test]
fn variant_walks_replay_exactly() {
    let d = benchgen::ex00();
    let a = generate_variants(&d.aig, 10, 123);
    let b = generate_variants(&d.aig, 10, 123);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(aig::aiger::to_ascii(x), aig::aiger::to_ascii(y));
    }
    // A different seed must diverge somewhere.
    let c = generate_variants(&d.aig, 10, 124);
    assert!(
        a.iter()
            .zip(&c)
            .any(|(x, y)| aig::aiger::to_ascii(x) != aig::aiger::to_ascii(y)),
        "different seeds should explore differently"
    );
}

#[test]
fn training_pipeline_reproduces_bitwise() {
    let lib = sky130ish();
    let d = benchgen::ex68();
    let mk = || {
        let set = labeled_set(&d, 30, 5, &lib);
        let model = gbt::train(
            &set.to_dataset(Target::Delay),
            &GbtParams {
                num_rounds: 30,
                seed: 9,
                ..GbtParams::default()
            },
        );
        let probe = features::extract(&d.aig);
        model.predict_f64(probe.as_slice())
    };
    assert_eq!(mk(), mk());
}

#[test]
fn sa_runs_replay_with_seed() {
    let d = benchgen::ex68();
    let actions = recipes();
    let opts = SaOptions {
        iterations: 8,
        seed: 77,
        ..SaOptions::default()
    };
    let a = optimize(&d.aig, &mut ProxyCost, &actions, &opts);
    let b = optimize(&d.aig, &mut ProxyCost, &actions, &opts);
    assert_eq!(a.best_cost, b.best_cost);
    assert_eq!(a.history, b.history);
    assert_eq!(aig::aiger::to_ascii(&a.best), aig::aiger::to_ascii(&b.best));
}

/// The speculative batch engine replays exactly with the seed *and*
/// reproduces the serial engine byte for byte on a real benchmark
/// (the full on-vs-off × batch-size matrix lives in the `speculation`
/// test binary; the `AIG_THREADS` half in `npn_thread_determinism`).
#[test]
fn speculative_sa_replays_with_seed() {
    let d = benchgen::ex68();
    let actions = recipes();
    let serial_opts = SaOptions {
        iterations: 8,
        seed: 77,
        ..SaOptions::default()
    };
    let spec_opts = SaOptions {
        speculation: Some(saopt::SpeculationOptions::default()),
        ..serial_opts
    };
    let serial = optimize(&d.aig, &mut ProxyCost, &actions, &serial_opts);
    let a = optimize(&d.aig, &mut ProxyCost, &actions, &spec_opts);
    let b = optimize(&d.aig, &mut ProxyCost, &actions, &spec_opts);
    assert!(a.spec.is_some(), "speculation must engage");
    assert_eq!(a.spec, b.spec, "counters replay with the seed");
    assert_eq!(a.history, b.history);
    assert_eq!(a.history, serial.history);
    assert_eq!(a.evaluated, serial.evaluated);
    assert_eq!(
        aig::aiger::to_ascii(&a.best),
        aig::aiger::to_ascii(&serial.best)
    );
}

#[test]
fn mapping_and_sizing_are_deterministic() {
    let lib = sky130ish();
    let d = benchgen::ex00();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let run = || {
        let mut nl = mapper.map(&d.aig).expect("ok");
        techmap::resize_greedy(&mut nl, &lib, 2);
        sta::delay_and_area(&nl, &lib)
    };
    assert_eq!(run(), run());
}
