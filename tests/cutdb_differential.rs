//! Differential suite for the incremental cut database: after any
//! random edit walk — node appends, output retargets, substitutions,
//! committed and rolled-back transactions, interleaved with wholesale
//! recipe applications — [`aig::cut::CutDb`] must equal a fresh
//! [`aig::cut::enumerate_cuts`] of the final graph bit for bit, on
//! random graphs and on every `benchgen` design.

use aig::cut::CutDb;
use aig::incremental::{IncrementalAnalysis, Transaction};
use aig::{Aig, Lit, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use transform::recipes;

mod common;
use common::random_aig_with;

/// One speculative transaction of 1..4 random edits against
/// `(g, inc, db)`; commits or rolls back both the graph and the
/// database according to `commit`.
fn random_transaction(
    g: &mut Aig,
    inc: &mut IncrementalAnalysis,
    db: &mut CutDb,
    rng: &mut SmallRng,
    commit: bool,
) {
    db.begin_edit();
    let mut txn = Transaction::begin(g, inc);
    for _ in 0..rng.gen_range(1..4) {
        match rng.gen_range(0..4) {
            0 => {
                let n = txn.aig().num_nodes() as NodeId;
                let a = Lit::new(rng.gen_range(0..n), rng.gen());
                let b = Lit::new(rng.gen_range(0..n), rng.gen());
                let lit = txn.and(a, b);
                // Appends reach the database through sync_appends.
                db.sync_appends(txn.aig());
                let _ = lit;
            }
            1 if txn.aig().num_outputs() > 0 => {
                let idx = rng.gen_range(0..txn.aig().num_outputs());
                let n = txn.aig().num_nodes() as NodeId;
                txn.retarget_output(idx, Lit::new(rng.gen_range(0..n), rng.gen()));
                // Output retargets do not touch any cut list.
            }
            2 => {
                // Fresh replacement cone spliced into an earlier node
                // — the transforms' append protocol: build the cone,
                // sync the appended rows, substitute under the cycle
                // guard, invalidate the dirty region.
                let n = txn.aig().num_nodes() as NodeId;
                let ands: Vec<NodeId> = txn.aig().and_ids().collect();
                if ands.is_empty() {
                    continue;
                }
                let node = ands[rng.gen_range(0..ands.len())];
                let mut root = Lit::new(rng.gen_range(0..n), rng.gen());
                for _ in 0..rng.gen_range(1..4) {
                    let b = Lit::new(rng.gen_range(0..n), rng.gen());
                    root = txn.and(root, b);
                }
                db.sync_appends(txn.aig());
                if root.var() != node && !txn.aig().reaches(root.var(), node) {
                    txn.substitute(node, root);
                    db.invalidate(txn.aig(), txn.analysis(), txn.analysis().last_dirty());
                }
            }
            _ => {
                let ands: Vec<NodeId> = txn.aig().and_ids().collect();
                if ands.is_empty() {
                    continue;
                }
                let node = ands[rng.gen_range(0..ands.len())];
                let with = Lit::new(rng.gen_range(0..node), rng.gen());
                // `with < node` no longer implies acyclic once
                // committed forward references exist.
                if txn.aig().reaches(with.var(), node) {
                    continue;
                }
                txn.substitute(node, with);
                db.invalidate(txn.aig(), txn.analysis(), txn.analysis().last_dirty());
            }
        }
    }
    if commit {
        txn.commit();
        db.commit_edit();
    } else {
        txn.rollback();
        db.rollback_edit();
    }
}

/// Random graphs, random edit walks with rollbacks: the database
/// equals fresh enumeration after every transaction.
#[test]
fn random_edit_walks_match_fresh_enumeration() {
    for seed in 0..6u64 {
        for (k, max_cuts) in [(4usize, 8usize), (6, 5)] {
            let mut rng = SmallRng::seed_from_u64(0xD1FFC ^ seed);
            let mut g = random_aig_with(seed, 8, 100, 4);
            let mut inc = IncrementalAnalysis::new(&g);
            let mut db = CutDb::new(k, max_cuts);
            db.build(&g);
            for _ in 0..12 {
                let commit = rng.gen::<bool>();
                random_transaction(&mut g, &mut inc, &mut db, &mut rng, commit);
                inc.assert_matches_oracle(&g);
                db.assert_matches_fresh(&g);
            }
        }
    }
}

/// Recipe walks interleaved with in-place transactions: wholesale
/// graph replacements are absorbed by `build`, edits incrementally —
/// the database equals fresh enumeration after every step.
#[test]
fn recipe_walks_with_edits_match_fresh_enumeration() {
    let actions = recipes();
    for seed in 0..4u64 {
        let mut rng = SmallRng::seed_from_u64(0xCDB0 ^ seed);
        let mut g = random_aig_with(seed + 50, 7, 90, 3);
        let mut inc = IncrementalAnalysis::new(&g);
        let mut db = CutDb::new(4, 8);
        db.build(&g);
        for _ in 0..10 {
            if rng.gen::<f64>() < 0.35 {
                let recipe = &actions[rng.gen_range(0..actions.len())];
                g = recipe.apply(&g);
                inc.rebuild(&g);
                db.build(&g);
            } else {
                let commit = rng.gen::<bool>();
                random_transaction(&mut g, &mut inc, &mut db, &mut rng, commit);
            }
            db.assert_matches_fresh(&g);
        }
    }
}

/// Every `benchgen` design: a scripted edit sequence (substitutions
/// spread across the graph, an output retarget, appends, one
/// rollback) keeps the database exact at realistic design sizes.
#[test]
fn benchgen_designs_match_fresh_enumeration_through_edits() {
    for design in benchgen::iwls_like_suite() {
        let mut rng = SmallRng::seed_from_u64(0xBE9C ^ design.aig.num_nodes() as u64);
        let mut g = design.aig.clone();
        let mut inc = IncrementalAnalysis::new(&g);
        let mut db = CutDb::new(4, 8);
        db.build(&g);
        for step in 0..6 {
            let commit = step % 3 != 2; // every third transaction rolls back
            random_transaction(&mut g, &mut inc, &mut db, &mut rng, commit);
            db.assert_matches_fresh(&g);
        }
        inc.assert_matches_oracle(&g);
    }
}

/// The equality cutoff keeps single-substitution invalidation local
/// on a large design: far fewer lists are recomputed than exist.
#[test]
fn invalidation_is_local_on_large_designs() {
    let design = benchgen::ex28();
    let mut g = design.aig.clone();
    let ands: Vec<NodeId> = g.and_ids().collect();
    let mut inc = IncrementalAnalysis::new(&g);
    let mut db = CutDb::new(4, 8);
    db.build(&g);
    let node = ands[ands.len() * 3 / 4];
    let with = Lit::new(g.inputs()[0], false);
    let dirty_len = {
        let dirty = inc.substitute(&mut g, node, with);
        dirty.edited().len()
    };
    assert!(dirty_len > 0, "the node has consumers");
    db.invalidate(&g, &inc, inc.last_dirty());
    db.assert_matches_fresh(&g);
}
