//! Differential tests for the incremental analysis state: seeded
//! random recipe walks and edit scripts asserting that
//! [`aig::incremental::IncrementalAnalysis`] stays bit-identical to
//! the full-recompute oracle (`aig::analysis::{levels,
//! fanout_counts}`) after every single step — on random graphs and on
//! every `benchgen` design.

use aig::incremental::{IncrementalAnalysis, Transaction};
use aig::{Aig, Lit, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use transform::recipes;

mod common;
use common::random_aig_with;

/// One random in-place edit: append a few ANDs, retarget an output,
/// substitute a node by an earlier literal, or splice a freshly
/// appended replacement cone through a journaled transaction (half of
/// those roll back exactly). Returns `false` when the graph offered
/// no substitution target.
fn random_inplace_edit(g: &mut Aig, inc: &mut IncrementalAnalysis, rng: &mut SmallRng) {
    match rng.gen_range(0..4) {
        0 => {
            let n = g.num_nodes() as NodeId;
            for _ in 0..rng.gen_range(1..5) {
                let a = Lit::new(rng.gen_range(0..n), rng.gen());
                let b = Lit::new(rng.gen_range(0..n), rng.gen());
                g.and(a, b);
            }
            inc.sync(g);
        }
        1 if g.num_outputs() > 0 => {
            let idx = rng.gen_range(0..g.num_outputs());
            let l = Lit::new(rng.gen_range(0..g.num_nodes() as NodeId), rng.gen());
            g.set_output(idx, l);
            inc.sync(g);
        }
        2 => {
            let ands: Vec<NodeId> = g.and_ids().collect();
            if ands.is_empty() {
                return;
            }
            let node = ands[rng.gen_range(0..ands.len())];
            let with = Lit::new(rng.gen_range(0..node), rng.gen());
            // `with < node` no longer implies acyclic once committed
            // forward references exist — check reachability exactly
            // like the transforms' cycle guard does.
            if g.reaches(with.var(), node) {
                return;
            }
            inc.substitute(g, node, with);
        }
        _ => {
            // Fresh replacement cone: append strashed nodes above the
            // high-water mark inside a transaction, splice them into
            // an earlier node by substitution (a committed forward
            // reference), and roll half of the transactions back.
            let mut txn = Transaction::begin(g, inc);
            let n = txn.aig().num_nodes() as NodeId;
            let ands: Vec<NodeId> = txn.aig().and_ids().collect();
            if ands.is_empty() {
                txn.rollback();
                return;
            }
            let node = ands[rng.gen_range(0..ands.len())];
            let mut root = Lit::new(rng.gen_range(0..n), rng.gen());
            for _ in 0..rng.gen_range(1..4) {
                let b = Lit::new(rng.gen_range(0..n), rng.gen());
                root = txn.and(root, b);
            }
            if root.var() != node && !txn.aig().reaches(root.var(), node) {
                txn.substitute(node, root);
            }
            if rng.gen() {
                txn.commit();
            } else {
                txn.rollback();
            }
        }
    }
}

/// Random recipe walks interleaved with in-place edits: after every
/// step — whether the graph was replaced wholesale by a recipe
/// (absorbed via `rebuild`) or edited in place (absorbed via
/// `sync`/`substitute`) — the incremental state must equal the
/// oracle exactly.
#[test]
fn recipe_walks_with_edits_match_oracle_on_random_graphs() {
    let actions = recipes();
    for seed in 0..6u64 {
        let mut rng = SmallRng::seed_from_u64(0xD1FF ^ seed);
        let mut g = random_aig_with(seed, 8, 120, 4);
        let mut inc = IncrementalAnalysis::new(&g);
        inc.assert_matches_oracle(&g);
        for step in 0..24 {
            if rng.gen::<f64>() < 0.4 {
                let recipe = &actions[rng.gen_range(0..actions.len())];
                g = recipe.apply(&g);
                inc.rebuild(&g);
            } else {
                random_inplace_edit(&mut g, &mut inc, &mut rng);
            }
            inc.assert_matches_oracle(&g);
            let _ = step;
        }
    }
}

/// Every `benchgen` design: a scripted edit sequence (substitutions
/// spread across the graph, output retargets, appended nodes, and one
/// recipe step) with oracle checks after each step.
#[test]
fn benchgen_designs_match_oracle_through_edits() {
    let actions = recipes();
    for design in benchgen::iwls_like_suite() {
        let mut rng = SmallRng::seed_from_u64(0xBE9C ^ design.aig.num_nodes() as u64);
        let mut g = design.aig.clone();
        let mut inc = IncrementalAnalysis::new(&g);
        inc.assert_matches_oracle(&g);
        for _ in 0..8 {
            random_inplace_edit(&mut g, &mut inc, &mut rng);
            inc.assert_matches_oracle(&g);
        }
        // One recipe step (wholesale replacement) per design: rebuild
        // absorbs it and the state matches the oracle again.
        let recipe = &actions[rng.gen_range(0..actions.len())];
        g = recipe.apply(&g);
        inc.rebuild(&g);
        inc.assert_matches_oracle(&g);
    }
}

/// Substituting a node by a functionally equivalent literal must
/// preserve the graph's function end to end (sweep + equivalence),
/// not just the analyses.
#[test]
fn equivalent_substitution_preserves_function() {
    // Build redundant logic with a known-equivalent pair:
    // f = (a & b) | (a & !b) == a, consumed downstream.
    let mut g = Aig::new();
    let a = g.add_input();
    let b = g.add_input();
    let c = g.add_input();
    let t0 = g.and(a, b);
    let t1 = g.and(a, !b);
    let f = g.or(t0, t1); // == a
    let top = g.xor(f, c);
    g.add_output(top, Some("y"));
    let before = g.clone();

    let mut inc = IncrementalAnalysis::new(&g);
    let dirty = inc.substitute(&mut g, f.var(), a.complement_if(f.is_complement()));
    assert!(!dirty.is_empty());
    inc.assert_matches_oracle(&g);
    assert!(aig::sim::equiv_exhaustive(&before, &g).expect("tiny"));

    // The swept graph drops the now-dangling redundant cone.
    let swept = g.sweep();
    assert!(swept.num_ands() < before.num_live_ands());
    assert!(aig::sim::equiv_exhaustive(&before, &swept).expect("tiny"));
}

/// The dirty region of a single-step substitution must stay local:
/// bounded by the transitive fanout, not the graph.
#[test]
fn dirty_region_is_local_on_large_designs() {
    let design = benchgen::ex28();
    let mut g = design.aig.clone();
    let ands: Vec<NodeId> = g.and_ids().collect();
    let mut inc = IncrementalAnalysis::new(&g);
    // A node three quarters into the graph: its transitive fanout is
    // a fraction of the whole design.
    let node = ands[ands.len() * 3 / 4];
    let with = Lit::new(g.inputs()[0], false);
    let dirty = inc.substitute(&mut g, node, with).len();
    inc.assert_matches_oracle(&g);
    assert!(
        dirty * 4 < ands.len(),
        "dirty region {dirty} should be well under the {} AND nodes",
        ands.len()
    );
}
