//! Differential tests for the incremental feature-maintenance state
//! and the batched proxy-inference paths: [`IncrementalFeatures`]
//! must stay bit-identical to the full [`extract`] oracle through
//! random edit walks (rollbacks included) and on every `benchgen`
//! design; batched GBT/GNN inference must match the scalar paths bit
//! for bit; and ML-guided SA must be byte-identical with the
//! transaction engine on or off, with speculation on or off, and for
//! any `AIG_THREADS` worker count.

use aig::aiger::to_ascii;
use aig::incremental::{IncrementalAnalysis, Transaction};
use aig::{Aig, Lit, NodeId};
use features::{extract, IncrementalFeatures};
use gbt::{Forest, GbtParams};
use gnn::{GnnModel, GnnParams, GnnScratch, GraphData};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use saopt::{optimize_with, EvalContext, MlCost, SaOptions, SpeculationOptions};
use transform::{recipes, Recipe, Transform};

mod common;
use common::random_aig_with;

/// One random in-place edit with the feature state maintained in
/// lock-step: plain appends/retargets/substitutions absorbed through
/// [`IncrementalAnalysis::last_dirty`], and journaled transactions
/// (half rolled back, mirroring the SA loops' reject protocol: sync
/// to the edited graph, then re-sync over the same footprint after
/// the rollback).
fn random_edit(
    g: &mut Aig,
    inc: &mut IncrementalAnalysis,
    feats: &mut IncrementalFeatures,
    rng: &mut SmallRng,
) {
    match rng.gen_range(0..4) {
        0 => {
            let n = g.num_nodes() as NodeId;
            for _ in 0..rng.gen_range(1..5) {
                let a = Lit::new(rng.gen_range(0..n), rng.gen());
                let b = Lit::new(rng.gen_range(0..n), rng.gen());
                g.and(a, b);
            }
            inc.sync(g);
            feats.sync(g, inc.last_dirty(), inc);
        }
        1 if g.num_outputs() > 0 => {
            let idx = rng.gen_range(0..g.num_outputs());
            let l = Lit::new(rng.gen_range(0..g.num_nodes() as NodeId), rng.gen());
            g.set_output(idx, l);
            inc.sync(g);
            feats.sync(g, inc.last_dirty(), inc);
        }
        2 => {
            let ands: Vec<NodeId> = g.and_ids().collect();
            if ands.is_empty() {
                return;
            }
            let node = ands[rng.gen_range(0..ands.len())];
            let with = Lit::new(rng.gen_range(0..node), rng.gen());
            if g.reaches(with.var(), node) {
                return;
            }
            inc.substitute(g, node, with);
            feats.sync(g, inc.last_dirty(), inc);
        }
        _ => {
            // Fresh replacement cone spliced through a transaction;
            // half roll back.
            let mut txn = Transaction::begin(g, inc);
            let n = txn.aig().num_nodes() as NodeId;
            let ands: Vec<NodeId> = txn.aig().and_ids().collect();
            if ands.is_empty() {
                txn.rollback();
                return;
            }
            let node = ands[rng.gen_range(0..ands.len())];
            let mut root = Lit::new(rng.gen_range(0..n), rng.gen());
            for _ in 0..rng.gen_range(1..4) {
                let b = Lit::new(rng.gen_range(0..n), rng.gen());
                root = txn.and(root, b);
            }
            if root.var() != node && !txn.aig().reaches(root.var(), node) {
                txn.substitute(node, root);
            }
            let region = txn.touched_region().clone();
            feats.sync(txn.aig(), &region, txn.analysis());
            // The mid-edit state must already match the oracle on the
            // edited graph (this is what prices a speculated move).
            feats.assert_matches_oracle(txn.aig());
            if rng.gen() {
                txn.commit();
            } else {
                txn.rollback();
                feats.sync(g, &region, inc);
            }
        }
    }
}

/// Random recipe walks interleaved with in-place edits: after every
/// step — wholesale graph replacement (absorbed via `rebuild`),
/// occasional invalidation (absorbed by `sync`'s rebuild path), or an
/// in-place edit with rollbacks — the maintained features must equal
/// the full `extract` bit for bit.
#[test]
fn random_edit_walks_with_rollbacks_match_extract() {
    let actions = recipes();
    for seed in 0..6u64 {
        let mut rng = SmallRng::seed_from_u64(0xFEA7 ^ seed);
        let mut g = random_aig_with(seed, 8, 120, 4);
        let mut inc = IncrementalAnalysis::new(&g);
        let mut feats = IncrementalFeatures::default();
        feats.rebuild(&g);
        feats.assert_matches_oracle(&g);
        for _step in 0..24 {
            if rng.gen::<f64>() < 0.3 {
                let recipe = &actions[rng.gen_range(0..actions.len())];
                g = recipe.apply(&g);
                inc.rebuild(&g);
                feats.rebuild(&g);
            } else if rng.gen::<f64>() < 0.08 {
                // An invalid state must rebuild itself on sync.
                feats.invalidate();
                assert!(!feats.is_valid());
                random_edit(&mut g, &mut inc, &mut feats, &mut rng);
            } else {
                random_edit(&mut g, &mut inc, &mut feats, &mut rng);
            }
            feats.assert_matches_oracle(&g);
            inc.assert_matches_oracle(&g);
        }
    }
}

/// Every `benchgen` design: seeded edit scripts with oracle checks
/// after each step, so the incremental state is exercised on the real
/// suite topologies (deep arithmetic cones, wide control logic).
#[test]
fn benchgen_designs_match_extract_through_edits() {
    for design in benchgen::iwls_like_suite() {
        let mut rng = SmallRng::seed_from_u64(0xFEA8 ^ design.aig.num_nodes() as u64);
        let mut g = design.aig.clone();
        let mut inc = IncrementalAnalysis::new(&g);
        let mut feats = IncrementalFeatures::default();
        feats.rebuild(&g);
        feats.assert_matches_oracle(&g);
        for _step in 0..10 {
            random_edit(&mut g, &mut inc, &mut feats, &mut rng);
            feats.assert_matches_oracle(&g);
        }
    }
}

/// Batched GBT inference over real design features: `predict_all`
/// (the flattened-forest path) and `Forest::predict_into` must match
/// the scalar tree-walk predictions bit for bit, and the `f64` row
/// path must equal the convert-then-predict reference.
#[test]
fn gbt_batched_predictions_match_scalar_bits() {
    let mut data = gbt::Dataset::new(features::NUM_FEATURES);
    let mut rows_f64: Vec<Vec<f64>> = Vec::new();
    for (i, design) in benchgen::iwls_like_suite().iter().enumerate() {
        let mut g = design.aig.clone();
        for (j, recipe) in recipes().iter().take(3).enumerate() {
            let fv = extract(&g);
            data.push_row_f64(fv.as_slice(), 50.0 + 13.7 * i as f64 + 3.1 * j as f64);
            rows_f64.push(fv.as_slice().to_vec());
            g = recipe.apply(&g);
        }
    }
    let model = gbt::train(
        &data,
        &GbtParams {
            num_rounds: 30,
            seed: 7,
            ..GbtParams::default()
        },
    );
    let forest = Forest::flatten(&model);
    let batched = model.predict_all(&data);
    let mut into = vec![0.0f64; data.len()];
    forest.predict_into(data.features(), &mut into);
    assert_eq!(batched.len(), data.len());
    for i in 0..data.len() {
        let scalar = model.predict(data.row(i));
        assert_eq!(
            batched[i].to_bits(),
            scalar.to_bits(),
            "row {i}: predict_all"
        );
        assert_eq!(into[i].to_bits(), scalar.to_bits(), "row {i}: predict_into");
        let f64_path = model.predict_f64(&rows_f64[i]);
        let converted: Vec<f32> = rows_f64[i].iter().map(|&v| v as f32).collect();
        assert_eq!(
            f64_path.to_bits(),
            model.predict(&converted).to_bits(),
            "row {i}: f64 path must equal convert-then-predict"
        );
        assert_eq!(
            forest.predict_row_f64(&rows_f64[i]).to_bits(),
            f64_path.to_bits(),
            "row {i}: flattened f64 path"
        );
    }
}

/// Batched GNN inference over real design graphs: `predict_batch`
/// (level-parallel, scratch-reusing) and `predict_with` must match
/// the scalar `predict` bit for bit — for any worker count, since the
/// per-node arithmetic order is unchanged.
#[test]
fn gnn_batched_predictions_match_scalar_bits() {
    let designs = benchgen::iwls_like_suite();
    let train: Vec<(GraphData, f64)> = designs
        .iter()
        .take(3)
        .enumerate()
        .map(|(i, d)| (GraphData::from_aig(&d.aig), 80.0 + 21.3 * i as f64))
        .collect();
    let (model, _losses) = GnnModel::train(
        &train,
        &GnnParams {
            seed: 3,
            epochs: 4,
            ..GnnParams::default()
        },
    );
    let graphs: Vec<GraphData> = designs
        .iter()
        .map(|d| GraphData::from_aig(&d.aig))
        .collect();
    let batch = model.predict_batch(&graphs);
    assert_eq!(batch.len(), graphs.len());
    let mut scratch = GnnScratch::default();
    for (i, gd) in graphs.iter().enumerate() {
        let scalar = model.predict(gd);
        assert_eq!(batch[i].to_bits(), scalar.to_bits(), "graph {i}: batch");
        assert_eq!(
            model.predict_with(gd, &mut scratch).to_bits(),
            scalar.to_bits(),
            "graph {i}: warm scratch"
        );
    }
}

/// Restores the pre-test `AIG_THREADS` value even if an assert
/// unwinds mid-loop.
struct EnvGuard(Option<String>);

impl Drop for EnvGuard {
    fn drop(&mut self) {
        match self.0.take() {
            Some(v) => std::env::set_var("AIG_THREADS", v),
            None => std::env::remove_var("AIG_THREADS"),
        }
    }
}

/// ML-guided SA through the incremental feature path: the transaction
/// engine on vs off (full `extract` oracle per candidate), and the
/// speculative batch engine on top (forked `MlCost`s with per-slot
/// feature state), must produce byte-identical `SaResult`s — and the
/// whole matrix must be independent of `AIG_THREADS`.
#[test]
fn ml_guided_sa_engine_and_threads_byte_identical() {
    let _guard = EnvGuard(std::env::var("AIG_THREADS").ok());
    let g = random_aig_with(43, 9, 140, 4);
    // Train small delay/area models on recipe variants of the graph
    // itself, labeled with the proxy truths — enough signal for SA to
    // accept and reject a realistic mix of moves.
    let mut delay_data = gbt::Dataset::new(features::NUM_FEATURES);
    let mut area_data = gbt::Dataset::new(features::NUM_FEATURES);
    let mut variant = g.clone();
    for recipe in recipes().iter().cycle().take(16) {
        let fv = extract(&variant);
        let delay = f64::from(aig::analysis::levels(&variant).max_level).max(1.0) * 35.0;
        let area = (variant.num_ands() as f64).max(1.0) * 1.6;
        delay_data.push_row_f64(fv.as_slice(), delay);
        area_data.push_row_f64(fv.as_slice(), area);
        variant = recipe.apply(&variant);
    }
    let params = GbtParams {
        num_rounds: 25,
        seed: 17,
        ..GbtParams::default()
    };
    let delay_model = gbt::train(&delay_data, &params);
    let area_model = gbt::train(&area_data, &params);

    let actions = vec![
        Recipe(vec![Transform::Rewrite]),
        Recipe(vec![Transform::RewriteZero]),
        Recipe(vec![Transform::Refactor]),
        Recipe(vec![Transform::RefactorZero]),
        Recipe(vec![Transform::Balance]),
        Recipe(vec![Transform::Resub]),
        Recipe(vec![Transform::Sweep]),
    ];
    let opts = SaOptions {
        iterations: 30,
        seed: 11,
        ..SaOptions::default()
    };
    let spec_opts = SaOptions {
        speculation: Some(SpeculationOptions::default()),
        ..opts
    };

    let mut per_thread_results = Vec::new();
    for threads in ["1", "4"] {
        std::env::set_var("AIG_THREADS", threads);
        let on = optimize_with(
            &g,
            &mut MlCost::new(&delay_model, &area_model),
            &actions,
            &opts,
            &mut EvalContext::new(),
        );
        let mut off_ctx = EvalContext::new();
        off_ctx.set_inplace_transactions(false);
        let off = optimize_with(
            &g,
            &mut MlCost::new(&delay_model, &area_model),
            &actions,
            &opts,
            &mut off_ctx,
        );
        assert_eq!(
            to_ascii(&on.best),
            to_ascii(&off.best),
            "{threads} threads: best AIG must not depend on the engine"
        );
        assert_eq!(on.history, off.history, "{threads} threads");
        assert_eq!(on.evaluated, off.evaluated, "{threads} threads");
        assert_eq!(on.accepted, off.accepted, "{threads} threads");

        let spec = optimize_with(
            &g,
            &mut MlCost::new(&delay_model, &area_model),
            &actions,
            &spec_opts,
            &mut EvalContext::new(),
        );
        assert!(spec.spec.is_some(), "{threads} threads: ML must fork");
        assert_eq!(
            to_ascii(&spec.best),
            to_ascii(&on.best),
            "{threads} threads: speculation must match the serial engine"
        );
        assert_eq!(spec.history, on.history, "{threads} threads: spec");
        assert_eq!(spec.evaluated, on.evaluated, "{threads} threads: spec");
        per_thread_results.push(on);
    }
    let (a, b) = (&per_thread_results[0], &per_thread_results[1]);
    assert_eq!(
        to_ascii(&a.best),
        to_ascii(&b.best),
        "results must be independent of AIG_THREADS"
    );
    assert_eq!(a.history, b.history);
    assert_eq!(a.evaluated, b.evaluated);
}
