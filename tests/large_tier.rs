//! Large-tier coverage: the `benchgen::large_*` scale designs run
//! through the same structural, differential, and serialization
//! guarantees the paper-sized suite enjoys.
//!
//! Always-on tests stay on `large_10k` (plus one 100k serialization
//! round-trip, which is pure I/O); the full-size differential runs
//! ride behind `#[ignore]` — `cargo test -- --ignored` — so the tier-1
//! wall clock stays bounded while the deep runs remain one flag away.

use aig::aiger;
use aig::incremental::{IncrementalAnalysis, Transaction};
use aig::{Aig, Lit, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use saopt::{optimize_with, EvalContext, ProxyCost, SaOptions};
use transform::{Recipe, Transform};

/// Structural invariants every large-tier build must hold: the graph
/// arrives topological, every AND is registered in the structural
/// hash under its own fanin pair, and no sampled node can reach
/// itself through its fanin cone.
fn assert_well_formed(g: &Aig) {
    assert!(g.is_topological(), "fresh build must be topological");
    for id in g.and_ids() {
        let [f0, f1] = g.fanins(id);
        assert_eq!(
            g.find_and(f0, f1),
            Some(Lit::new(id, false)),
            "AND {id} must be strash-consistent"
        );
    }
    // Acyclicity by traversal (spot-checked: `reaches` walks the full
    // fanin cone, so a graph-wide pass would be quadratic).
    let ands: Vec<NodeId> = g.and_ids().collect();
    let stride = (ands.len() / 64).max(1);
    for &id in ands.iter().step_by(stride) {
        let [f0, f1] = g.fanins(id);
        assert!(
            !g.reaches(f0.var(), id) && !g.reaches(f1.var(), id),
            "AND {id} reachable from its own fanins"
        );
    }
}

#[test]
fn large_10k_is_strash_consistent_and_acyclic() {
    assert_well_formed(&benchgen::large_10k().aig);
}

/// One random in-place edit, mirroring the differential suite's move
/// vocabulary: append ANDs, retarget an output, substitute by an
/// earlier literal, or splice a fresh transaction cone (half of the
/// transactions roll back).
fn random_inplace_edit(g: &mut Aig, inc: &mut IncrementalAnalysis, rng: &mut SmallRng) {
    match rng.gen_range(0..4) {
        0 => {
            let n = g.num_nodes() as NodeId;
            for _ in 0..rng.gen_range(1..5) {
                let a = Lit::new(rng.gen_range(0..n), rng.gen());
                let b = Lit::new(rng.gen_range(0..n), rng.gen());
                g.and(a, b);
            }
            inc.sync(g);
        }
        1 if g.num_outputs() > 0 => {
            let idx = rng.gen_range(0..g.num_outputs());
            let l = Lit::new(rng.gen_range(0..g.num_nodes() as NodeId), rng.gen());
            g.set_output(idx, l);
            inc.sync(g);
        }
        2 => {
            let ands: Vec<NodeId> = g.and_ids().collect();
            let node = ands[rng.gen_range(0..ands.len())];
            let with = Lit::new(rng.gen_range(0..node), rng.gen());
            if g.reaches(with.var(), node) {
                return;
            }
            inc.substitute(g, node, with);
        }
        _ => {
            let mut txn = Transaction::begin(g, inc);
            let n = txn.aig().num_nodes() as NodeId;
            let ands: Vec<NodeId> = txn.aig().and_ids().collect();
            let node = ands[rng.gen_range(0..ands.len())];
            let mut root = Lit::new(rng.gen_range(0..n), rng.gen());
            for _ in 0..rng.gen_range(1..4) {
                let b = Lit::new(rng.gen_range(0..n), rng.gen());
                root = txn.and(root, b);
            }
            if root.var() != node && !txn.aig().reaches(root.var(), node) {
                txn.substitute(node, root);
            }
            if rng.gen() {
                txn.commit();
            } else {
                txn.rollback();
            }
        }
    }
}

/// Seeded edit walk over a large-tier design with the incremental
/// state checked against the full-recompute level/fanout oracle after
/// every step — the tier's tiles must not hide any analysis drift the
/// paper-sized designs would have caught.
fn edit_walk_matches_oracle(mut g: Aig, steps: usize, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut inc = IncrementalAnalysis::new(&g);
    inc.assert_matches_oracle(&g);
    for _ in 0..steps {
        random_inplace_edit(&mut g, &mut inc, &mut rng);
        inc.assert_matches_oracle(&g);
    }
    // The walk's committed forward references and dangling cones must
    // still sweep into a topological graph.
    assert!(g.sweep().is_topological());
}

#[test]
fn large_10k_levels_stable_under_random_edit_walks() {
    edit_walk_matches_oracle(benchgen::large_10k().aig, 12, 0x1A26E);
}

/// Serialization round-trips on the 100k-node design: binary AIGER
/// must survive a write/read/write cycle byte for byte, and the BLIF
/// printer must be a fixed point of its own parser.
#[test]
fn large_100k_round_trips_through_aiger_and_blif() {
    let d = benchgen::large_100k();
    let bin = aiger::to_binary(&d.aig);
    let back = aiger::from_binary(&bin).expect("own binary output must parse");
    assert_eq!(aiger::to_binary(&back), bin, "binary AIGER round trip");
    // (`to_binary` renumbers into the format's contiguous order, so
    // the ascii check is a fixed point on the reparsed graph, not a
    // comparison against the generator's numbering.)
    let txt = aiger::to_ascii(&back);
    let back2 = aiger::from_ascii(&txt).expect("own ascii output must parse");
    assert_eq!(aiger::to_ascii(&back2), txt, "ascii AIGER round trip");

    let blif = aig::blif::to_blif(&d.aig, "large100k");
    let back = aig::blif::from_blif(&blif).expect("own BLIF output must parse");
    assert_eq!(back.num_inputs(), d.aig.num_inputs());
    assert_eq!(back.num_outputs(), d.aig.num_outputs());
    assert_eq!(
        aig::blif::to_blif(&back, "large100k"),
        blif,
        "BLIF round trip"
    );
}

fn inplace_actions() -> Vec<Recipe> {
    vec![
        Recipe(vec![Transform::Rewrite]),
        Recipe(vec![Transform::RewriteZero]),
        Recipe(vec![Transform::Refactor]),
        Recipe(vec![Transform::RefactorZero]),
        Recipe(vec![Transform::Balance]),
        Recipe(vec![Transform::Resub]),
        Recipe(vec![Transform::Sweep]),
        Recipe(vec![Transform::Resub, Transform::Rewrite]),
    ]
}

/// Trimmed always-on byte-identity smoke on `large_10k`: one short SA
/// run under the default context is the shared baseline, and both the
/// engine-off and the speculative run must reproduce it exactly —
/// best AIG, history, and per-candidate counters.
#[test]
fn large_10k_engine_and_speculation_byte_identical_smoke() {
    let g = benchgen::large_10k().aig;
    let actions = inplace_actions();
    let opts = SaOptions {
        iterations: 6,
        seed: 5,
        ..SaOptions::default()
    };
    let base = optimize_with(&g, &mut ProxyCost, &actions, &opts, &mut EvalContext::new());
    assert!(base.spec.is_none());

    let mut off_ctx = EvalContext::new();
    off_ctx.set_inplace_transactions(false);
    let off = optimize_with(&g, &mut ProxyCost, &actions, &opts, &mut off_ctx);
    assert_eq!(
        aiger::to_ascii(&base.best),
        aiger::to_ascii(&off.best),
        "best AIG must not depend on the transaction engine"
    );
    assert_eq!(base.history, off.history);
    assert_eq!(base.evaluated, off.evaluated);
    assert_eq!(base.accepted, off.accepted);

    let spec_opts = SaOptions {
        speculation: Some(saopt::SpeculationOptions::default()),
        ..opts
    };
    let spec = optimize_with(
        &g,
        &mut ProxyCost,
        &actions,
        &spec_opts,
        &mut EvalContext::new(),
    );
    assert!(spec.spec.is_some(), "speculation must engage");
    assert_eq!(
        aiger::to_ascii(&base.best),
        aiger::to_ascii(&spec.best),
        "best AIG must not depend on speculation"
    );
    assert_eq!(base.history, spec.history);
    assert_eq!(base.evaluated, spec.evaluated);
    assert_eq!(base.accepted, spec.accepted);
}

/// Full-size differential run, `#[ignore]`-by-default: the 100k
/// design through a longer oracle-checked edit walk and the proxy
/// byte-identity contract, plus the ground-truth evaluator (engine
/// on/off exercises incremental mapping through the cut database) on
/// the 10k design. Run with `cargo test -- --ignored`.
#[test]
#[ignore = "full large-tier differential run; minutes on a laptop"]
fn large_100k_full_differential() {
    let d = benchgen::large_100k();
    assert_well_formed(&d.aig);
    edit_walk_matches_oracle(d.aig.clone(), 16, 0x1A100E);

    let actions = inplace_actions();
    let opts = SaOptions {
        iterations: 10,
        seed: 9,
        ..SaOptions::default()
    };
    let mut off_ctx = EvalContext::new();
    off_ctx.set_inplace_transactions(false);
    let on = optimize_with(
        &d.aig,
        &mut ProxyCost,
        &actions,
        &opts,
        &mut EvalContext::new(),
    );
    let off = optimize_with(&d.aig, &mut ProxyCost, &actions, &opts, &mut off_ctx);
    assert_eq!(aiger::to_ascii(&on.best), aiger::to_ascii(&off.best));
    assert_eq!(on.history, off.history);
    assert_eq!(on.evaluated, off.evaluated);
    assert_eq!(on.accepted, off.accepted);

    let g = benchgen::large_10k().aig;
    let lib = cells::sky130ish();
    let opts = SaOptions {
        iterations: 4,
        seed: 9,
        ..SaOptions::default()
    };
    let mut off_ctx = EvalContext::new();
    off_ctx.set_inplace_transactions(false);
    let on = optimize_with(
        &g,
        &mut saopt::GroundTruthCost::new(&lib),
        &actions,
        &opts,
        &mut EvalContext::new(),
    );
    let off = optimize_with(
        &g,
        &mut saopt::GroundTruthCost::new(&lib),
        &actions,
        &opts,
        &mut off_ctx,
    );
    assert_eq!(
        aiger::to_ascii(&on.best),
        aiger::to_ascii(&off.best),
        "ground truth"
    );
    assert_eq!(on.history, off.history);
    assert_eq!(on.evaluated, off.evaluated);
}
