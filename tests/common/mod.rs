//! Shared fixtures for the integration-test binaries.

use aig::{Aig, Lit};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded random strashed AIG with the given shape.
pub fn random_aig_with(seed: u64, num_inputs: usize, num_nodes: usize, num_outputs: usize) -> Aig {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = Aig::new();
    let mut lits: Vec<Lit> = (0..num_inputs).map(|_| g.add_input()).collect();
    for _ in 0..num_nodes {
        let a = lits[rng.gen_range(0..lits.len())].complement_if(rng.gen());
        let b = lits[rng.gen_range(0..lits.len())].complement_if(rng.gen());
        lits.push(g.and(a, b));
    }
    for _ in 0..num_outputs {
        let l = lits[rng.gen_range(0..lits.len())];
        g.add_output(l.complement_if(rng.gen()), None::<&str>);
    }
    g
}

/// A small random AIG with randomized shape (2–7 inputs, up to ~60
/// nodes) — cheap enough for exhaustive equivalence checking.
#[allow(dead_code)] // each test binary uses a subset of this module
pub fn small_random_aig(seed: u64) -> Aig {
    let mut rng = SmallRng::seed_from_u64(seed);
    let num_inputs = rng.gen_range(2usize..8);
    let num_nodes = rng.gen_range(1usize..60);
    let num_outputs = rng.gen_range(1usize..5);
    random_aig_with(seed ^ 0x5DEECE66D, num_inputs, num_nodes, num_outputs)
}
