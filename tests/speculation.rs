//! Determinism and conflict-replay guarantees of the speculative SA
//! engine (`saopt::speculate`): with `SaOptions::speculation` set, a
//! chain scores waves of pre-drawn moves on parallel worker slots —
//! and every output field except the `spec` counters must be
//! byte-identical to the serial engine, for any batch size.
//!
//! (The `AIG_THREADS` 1-vs-4 half of the guarantee lives in the
//! `npn_thread_determinism` binary, because the env var is
//! process-global.)

use aig::aiger::to_ascii;
use saopt::{
    optimize_with, CostEvaluator, CostMetrics, EvalContext, ProxyCost, SaOptions, SaResult,
    SpeculationOptions,
};
use transform::{Recipe, Transform};

mod common;
use common::random_aig_with;

/// In-place-heavy action mix: every move runs through the transaction
/// engine, so waves stay dense and accepted edits force replays.
fn inplace_actions() -> Vec<Recipe> {
    vec![
        Recipe(vec![Transform::Rewrite]),
        Recipe(vec![Transform::RewriteZero]),
    ]
}

/// The same mix with whole-graph moves interleaved, exercising the
/// wave-discard path (a whole-graph accept invalidates the scout's
/// remaining window draws).
fn mixed_actions() -> Vec<Recipe> {
    vec![
        Recipe(vec![Transform::Rewrite]),
        Recipe(vec![Transform::RewriteZero]),
        Recipe(vec![Transform::Balance]),
        Recipe(vec![Transform::Sweep]),
    ]
}

fn assert_same(spec: &SaResult, serial: &SaResult, what: &str) {
    assert_eq!(
        to_ascii(&spec.best),
        to_ascii(&serial.best),
        "{what}: best AIG diverged from the serial oracle"
    );
    assert_eq!(spec.history, serial.history, "{what}: history");
    assert_eq!(spec.evaluated, serial.evaluated, "{what}: metrics");
    assert_eq!(spec.accepted, serial.accepted, "{what}: accepted");
    assert_eq!(spec.best_cost, serial.best_cost, "{what}: best cost");
}

/// The core contract: speculation on vs off is byte-identical under
/// the proxy evaluator, across seeds and action mixes — and a hot
/// temperature forces mid-wave accepts, so the runs actually commit,
/// replay, and discard rather than cruising through reject-only waves.
#[test]
fn speculative_runs_match_serial_oracle() {
    let g = random_aig_with(21, 9, 140, 4);
    let mut replayed = 0usize;
    let mut discarded = 0usize;
    for (actions, seeds) in [
        (inplace_actions(), [3u64, 17, 88]),
        (mixed_actions(), [5u64, 29, 71]),
    ] {
        for seed in seeds {
            let opts = SaOptions {
                iterations: 40,
                seed,
                initial_temp: 0.8,
                ..SaOptions::default()
            };
            let serial =
                optimize_with(&g, &mut ProxyCost, &actions, &opts, &mut EvalContext::new());
            assert!(serial.spec.is_none(), "serial runs report no counters");
            let opts = SaOptions {
                speculation: Some(SpeculationOptions { batch: 4 }),
                ..opts
            };
            let spec = optimize_with(&g, &mut ProxyCost, &actions, &opts, &mut EvalContext::new());
            let stats = spec.spec.expect("speculation must engage for ProxyCost");
            assert_eq!(
                stats.committed, opts.iterations,
                "every iteration must be served by a speculation"
            );
            assert!(stats.waves > 0);
            replayed += stats.replayed_conflicting + stats.replayed_stale;
            discarded += stats.discarded;
            assert_same(&spec, &serial, &format!("seed {seed}"));
        }
    }
    assert!(
        replayed > 0,
        "hot chains must have committed mid-wave and replayed the rest"
    );
    assert!(
        discarded > 0,
        "whole-graph accepts must have discarded speculations"
    );
}

/// Conflict replay: an accepted edit whose footprint overlaps a later
/// in-wave speculation forces a *conflicting* replay (the speculation
/// priced nodes the commit rewrote). Overlap classification feeds the
/// counters only — conflicting or merely stale, every replay is
/// re-scored, so the result must stay byte-identical.
#[test]
fn conflicting_replays_stay_byte_identical() {
    // Big enough that disjoint 64-node cone windows exist (so waves
    // hold several windowed moves), yet dense enough that their write
    // footprints — which extend past the windows into shared-fanin
    // fanout lists — still collide once a wave commits.
    let g = random_aig_with(77, 12, 500, 3);
    let actions = inplace_actions();
    let mut conflicting = 0usize;
    for seed in [1u64, 2, 3, 4, 5] {
        let opts = SaOptions {
            iterations: 30,
            seed,
            initial_temp: 1.0,
            ..SaOptions::default()
        };
        let serial = optimize_with(&g, &mut ProxyCost, &actions, &opts, &mut EvalContext::new());
        let opts = SaOptions {
            speculation: Some(SpeculationOptions { batch: 6 }),
            ..opts
        };
        let spec = optimize_with(&g, &mut ProxyCost, &actions, &opts, &mut EvalContext::new());
        conflicting += spec.spec.expect("engaged").replayed_conflicting;
        assert_same(&spec, &serial, &format!("seed {seed}"));
    }
    assert!(
        conflicting > 0,
        "dense hot chains must produce overlapping-footprint replays"
    );
}

/// Results are independent of the batch size: one-move waves, wide
/// waves, and the auto-sized default all reproduce the serial run.
#[test]
fn batch_size_never_changes_results() {
    let g = random_aig_with(33, 8, 120, 3);
    let actions = mixed_actions();
    let base = SaOptions {
        iterations: 25,
        seed: 11,
        initial_temp: 0.4,
        ..SaOptions::default()
    };
    let serial = optimize_with(&g, &mut ProxyCost, &actions, &base, &mut EvalContext::new());
    for batch in [1usize, 2, 5, 16, 0] {
        let opts = SaOptions {
            speculation: Some(SpeculationOptions { batch }),
            ..base
        };
        let spec = optimize_with(&g, &mut ProxyCost, &actions, &opts, &mut EvalContext::new());
        assert_same(&spec, &serial, &format!("batch {batch}"));
    }
}

/// The ground-truth evaluator speculates too: forked mappers price
/// candidates on worker slots (through the incremental
/// `evaluate_edit` path for windowed moves), byte-identical to the
/// serial engine-on run.
#[test]
fn ground_truth_speculation_matches_serial() {
    let g = random_aig_with(43, 9, 140, 4);
    let lib = cells::sky130ish();
    let actions = mixed_actions();
    let opts = SaOptions {
        iterations: 12,
        seed: 9,
        initial_temp: 0.4,
        ..SaOptions::default()
    };
    let serial = optimize_with(
        &g,
        &mut saopt::GroundTruthCost::new(&lib),
        &actions,
        &opts,
        &mut EvalContext::new(),
    );
    let opts = SaOptions {
        speculation: Some(SpeculationOptions { batch: 4 }),
        ..opts
    };
    let spec = optimize_with(
        &g,
        &mut saopt::GroundTruthCost::new(&lib),
        &actions,
        &opts,
        &mut EvalContext::new(),
    );
    assert!(spec.spec.is_some(), "ground truth must fork");
    assert_same(&spec, &serial, "ground truth");
}

/// Worker slots are pooled on the `EvalContext`: a second run sharing
/// the context builds no new slots (`contexts_spawned` stays flat)
/// and still reproduces a fresh-context run exactly.
#[test]
fn worker_slots_are_pooled_across_runs() {
    let g = random_aig_with(55, 8, 110, 3);
    let actions = inplace_actions();
    let opts = SaOptions {
        iterations: 15,
        seed: 7,
        speculation: Some(SpeculationOptions { batch: 3 }),
        ..SaOptions::default()
    };
    let mut ctx = EvalContext::new();
    let first = optimize_with(&g, &mut ProxyCost, &actions, &opts, &mut ctx);
    let spawned = ctx.contexts_spawned();
    assert!(spawned > 0, "first run must build its slots");
    assert_eq!(first.spec.expect("engaged").contexts_spawned, spawned);
    let second = optimize_with(&g, &mut ProxyCost, &actions, &opts, &mut ctx);
    assert_eq!(
        ctx.contexts_spawned(),
        spawned,
        "second run must reuse the pooled slots"
    );
    assert_eq!(second.spec.expect("engaged").contexts_spawned, 0);
    let fresh = optimize_with(&g, &mut ProxyCost, &actions, &opts, &mut EvalContext::new());
    assert_same(&second, &fresh, "warm pool");
}

/// An unforkable evaluator declines speculation: the run silently
/// degrades to the serial engine (`spec: None`) with identical
/// results.
#[test]
fn unforkable_evaluator_falls_back_to_serial() {
    /// ProxyCost pricing with the default (`None`) fork.
    struct Unforkable;
    impl CostEvaluator for Unforkable {
        fn evaluate(&mut self, aig: &aig::Aig) -> CostMetrics {
            ProxyCost.evaluate(aig)
        }
        fn name(&self) -> &'static str {
            "unforkable-proxy"
        }
    }
    let g = random_aig_with(66, 8, 100, 3);
    let actions = inplace_actions();
    let opts = SaOptions {
        iterations: 10,
        seed: 3,
        ..SaOptions::default()
    };
    let serial = optimize_with(&g, &mut ProxyCost, &actions, &opts, &mut EvalContext::new());
    let opts = SaOptions {
        speculation: Some(SpeculationOptions { batch: 4 }),
        ..opts
    };
    let fallback = optimize_with(
        &g,
        &mut Unforkable,
        &actions,
        &opts,
        &mut EvalContext::new(),
    );
    assert!(
        fallback.spec.is_none(),
        "unforkable evaluator must decline speculation"
    );
    assert_same(&fallback, &serial, "fallback");
}
