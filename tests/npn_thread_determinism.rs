//! Worker-count independence of the shared NPN resynthesis cache,
//! driven through the public API by toggling `AIG_THREADS`.
//!
//! This lives in its own test binary on purpose (like
//! `par_dispatch`): the env var is process-global, and here the
//! toggling test is the only test in the process, so no sibling test
//! can observe a mid-flight value. `optimize_seeds` and `sweep` both
//! share one `ResynthCache` across their parallel chains; with the
//! cache populated under racing writers (4 workers) and under a
//! single worker, every chain's output must be byte-identical.

use aig::aiger::to_ascii;
use saopt::{optimize_seeds, sweep, ProxyCost, SaOptions, SweepConfig};
use transform::recipes;

mod common;
use common::random_aig_with;

/// Restores the pre-test `AIG_THREADS` value even if an assert
/// unwinds mid-loop.
struct EnvGuard(Option<String>);

impl Drop for EnvGuard {
    fn drop(&mut self) {
        match self.0.take() {
            Some(v) => std::env::set_var("AIG_THREADS", v),
            None => std::env::remove_var("AIG_THREADS"),
        }
    }
}

#[test]
fn shared_cache_outputs_independent_of_worker_count() {
    let _guard = EnvGuard(std::env::var("AIG_THREADS").ok());
    let g = random_aig_with(31, 8, 110, 4);
    let actions = recipes();
    let opts = SaOptions {
        iterations: 5,
        ..SaOptions::default()
    };
    let seeds = [1u64, 9, 43, 77];
    let cfg = SweepConfig {
        weights: vec![(1.0, 0.0), (0.5, 0.5)],
        decays: vec![0.9, 0.95],
        iterations: 4,
        seed: 13,
        ..SweepConfig::default()
    };

    std::env::set_var("AIG_THREADS", "1");
    let serial_chains = optimize_seeds(&g, || ProxyCost, &actions, &opts, &seeds);
    let serial_sweep = sweep(&g, || ProxyCost, &actions, &cfg);

    std::env::set_var("AIG_THREADS", "4");
    let parallel_chains = optimize_seeds(&g, || ProxyCost, &actions, &opts, &seeds);
    let parallel_sweep = sweep(&g, || ProxyCost, &actions, &cfg);

    assert_eq!(serial_chains.len(), parallel_chains.len());
    for (i, (s, p)) in serial_chains.iter().zip(&parallel_chains).enumerate() {
        assert_eq!(
            to_ascii(&s.best),
            to_ascii(&p.best),
            "chain {i}: best AIG differs between 1 and 4 workers"
        );
        assert_eq!(s.history, p.history, "chain {i}");
        assert_eq!(s.evaluated, p.evaluated, "chain {i}");
    }
    assert_eq!(serial_sweep.len(), parallel_sweep.len());
    for (i, (s, p)) in serial_sweep.iter().zip(&parallel_sweep).enumerate() {
        assert_eq!(
            to_ascii(&s.best),
            to_ascii(&p.best),
            "sweep point {i}: best AIG differs between 1 and 4 workers"
        );
        assert_eq!(s.flow_metrics, p.flow_metrics, "sweep point {i}");
    }

    // The in-place transaction engine (default-on inside every chain)
    // under an action mix that exercises it on every other draw: the
    // shared cache is read from the in-place resynthesis probes too,
    // and results must stay independent of the worker count.
    let inplace_actions = vec![
        transform::Recipe(vec![transform::Transform::Rewrite]),
        transform::Recipe(vec![transform::Transform::RewriteZero]),
        transform::Recipe(vec![transform::Transform::Refactor]),
        transform::Recipe(vec![transform::Transform::RefactorZero]),
        transform::Recipe(vec![transform::Transform::Balance]),
        transform::Recipe(vec![transform::Transform::Resub]),
        transform::Recipe(vec![transform::Transform::Sweep]),
    ];
    let opts = SaOptions {
        iterations: 12,
        ..SaOptions::default()
    };
    std::env::set_var("AIG_THREADS", "1");
    let serial = optimize_seeds(&g, || ProxyCost, &inplace_actions, &opts, &seeds);
    std::env::set_var("AIG_THREADS", "4");
    let parallel = optimize_seeds(&g, || ProxyCost, &inplace_actions, &opts, &seeds);
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            to_ascii(&s.best),
            to_ascii(&p.best),
            "in-place chain {i}: best AIG differs between 1 and 4 workers"
        );
        assert_eq!(s.history, p.history, "in-place chain {i}");
        assert_eq!(s.evaluated, p.evaluated, "in-place chain {i}");
    }

    // The speculative batch engine: its worker count *and* its
    // default wave size follow `AIG_THREADS`, and neither may leak
    // into results — speculation on/off × 1/4 workers, all four runs
    // byte-identical per seed (proxy and ground truth).
    let spec_opts = SaOptions {
        speculation: Some(saopt::SpeculationOptions::default()),
        ..opts
    };
    let lib = cells::sky130ish();
    let gt_opts = SaOptions {
        iterations: 8,
        ..opts
    };
    let gt_spec_opts = SaOptions {
        speculation: Some(saopt::SpeculationOptions::default()),
        ..gt_opts
    };
    let gt = |opts: &SaOptions| {
        saopt::optimize_with(
            &g,
            &mut saopt::GroundTruthCost::new(&lib),
            &inplace_actions,
            opts,
            &mut saopt::EvalContext::new(),
        )
    };
    std::env::set_var("AIG_THREADS", "1");
    let spec_1 = optimize_seeds(&g, || ProxyCost, &inplace_actions, &spec_opts, &seeds);
    let gt_1 = gt(&gt_opts);
    let gt_spec_1 = gt(&gt_spec_opts);
    std::env::set_var("AIG_THREADS", "4");
    let spec_4 = optimize_seeds(&g, || ProxyCost, &inplace_actions, &spec_opts, &seeds);
    let gt_spec_4 = gt(&gt_spec_opts);
    for (i, ((s1, s4), ser)) in spec_1.iter().zip(&spec_4).zip(&serial).enumerate() {
        assert!(s1.spec.is_some() && s4.spec.is_some(), "chain {i}: engaged");
        assert_eq!(
            to_ascii(&s1.best),
            to_ascii(&s4.best),
            "speculative chain {i}: best AIG differs between 1 and 4 workers"
        );
        assert_eq!(s1.history, s4.history, "speculative chain {i}");
        assert_eq!(s1.evaluated, s4.evaluated, "speculative chain {i}");
        assert_eq!(
            to_ascii(&s1.best),
            to_ascii(&ser.best),
            "speculative chain {i}: diverged from the serial oracle"
        );
        assert_eq!(s1.history, ser.history, "speculative chain {i} vs serial");
    }
    for (what, run) in [("1 worker", &gt_spec_1), ("4 workers", &gt_spec_4)] {
        assert!(run.spec.is_some(), "ground truth must fork");
        assert_eq!(
            to_ascii(&gt_1.best),
            to_ascii(&run.best),
            "ground-truth speculation at {what} diverged"
        );
        assert_eq!(gt_1.history, run.history, "ground truth at {what}");
        assert_eq!(gt_1.evaluated, run.evaluated, "ground truth at {what}");
    }
}
