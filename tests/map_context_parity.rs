//! Parity tests for the reusable mapping context:
//! `Mapper::map_with(&mut ctx, ..)` must produce netlists identical
//! to `Mapper::map(..)` — gates, wiring, and evaluation — no matter
//! what the context previously mapped, including shrink-then-grow
//! size sequences, benchgen designs, and context hand-off between
//! mappers with different options.

use aig::Aig;
use cells::sky130ish;
use techmap::{MapContext, MapGoal, MapOptions, Mapper};

mod common;
use common::random_aig_with;

/// Deep netlist identity: the derived `Debug` form covers drivers,
/// gates (cells + pin wiring), inputs, and output ports.
fn assert_same_netlist(a: &techmap::Netlist, b: &techmap::Netlist, what: &str) {
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "{what}");
}

fn eval_all(nl: &techmap::Netlist, lib: &cells::Library, n: usize) -> Vec<Vec<bool>> {
    (0..1usize << n)
        .map(|m| nl.eval(lib, &(0..n).map(|i| m >> i & 1 == 1).collect::<Vec<_>>()))
        .collect()
}

/// One context across many distinct random graphs, sizes
/// deliberately shrinking and regrowing.
#[test]
fn reuse_across_many_graphs_matches_fresh() {
    let lib = sky130ish();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let mut ctx = MapContext::new();
    let shapes = [
        (1u64, 8usize, 120usize),
        (2, 4, 10),
        (3, 7, 90),
        (4, 2, 3),
        (5, 8, 120),
        (6, 5, 40),
    ];
    for (seed, inputs, nodes) in shapes {
        let g = random_aig_with(seed, inputs, nodes, 3);
        let fresh = mapper.map(&g).expect("mappable");
        let reused = mapper.map_with(&mut ctx, &g).expect("mappable");
        assert_same_netlist(&fresh, &reused, &format!("seed {seed}"));
        if inputs <= 8 {
            assert_eq!(
                eval_all(&fresh, &lib, g.num_inputs()),
                eval_all(&reused, &lib, g.num_inputs()),
                "seed {seed}: evaluation diverged"
            );
        }
    }
    assert!(ctx.num_memoized_functions() > 0, "memo must have filled");
}

/// Benchgen designs through one warm context, in both goals.
#[test]
fn benchgen_designs_match_fresh() {
    let lib = sky130ish();
    for goal in [MapGoal::Delay, MapGoal::Area] {
        let opts = MapOptions {
            goal,
            ..MapOptions::default()
        };
        let mapper = Mapper::new(&lib, opts);
        let mut ctx = MapContext::new();
        for design in [benchgen::ex00(), benchgen::ex68(), benchgen::ex08()] {
            let fresh = mapper.map(&design.aig).expect("mappable");
            let reused = mapper.map_with(&mut ctx, &design.aig).expect("mappable");
            assert_same_netlist(&fresh, &reused, &format!("{} {goal:?}", design.name));
        }
    }
}

/// Handing one context between mappers with different options (the
/// memo fingerprint must invalidate) keeps parity.
#[test]
fn context_handoff_between_mappers_matches_fresh() {
    let lib = sky130ish();
    let delay = Mapper::new(&lib, MapOptions::default());
    let area = Mapper::new(
        &lib,
        MapOptions {
            goal: MapGoal::Area,
            est_load_ff: 4.0,
            ..MapOptions::default()
        },
    );
    let mut ctx = MapContext::new();
    for seed in 0..4u64 {
        let g = random_aig_with(100 + seed, 6, 50, 3);
        for m in [&delay, &area, &delay] {
            let fresh = m.map(&g).expect("mappable");
            let reused = m.map_with(&mut ctx, &g).expect("mappable");
            assert_same_netlist(&fresh, &reused, &format!("seed {seed}"));
        }
    }
}

/// PO edge cases (constants, pass-throughs, inverted rails, shared
/// drivers) through a warm context.
#[test]
fn po_edge_cases_through_warm_context() {
    let lib = sky130ish();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let mut ctx = MapContext::new();
    // Warm the context on an unrelated graph first.
    let warmup = random_aig_with(7, 6, 60, 2);
    mapper.map_with(&mut ctx, &warmup).expect("mappable");

    let mut g = Aig::new();
    let a = g.add_input();
    let b = g.add_input();
    g.add_output(aig::Lit::TRUE, Some("tie1"));
    g.add_output(aig::Lit::FALSE, Some("tie0"));
    g.add_output(a, Some("pass"));
    g.add_output(!a, Some("inv"));
    let f = g.and(a, b);
    g.add_output(f, Some("f"));
    g.add_output(!f, Some("fbar"));
    let fresh = mapper.map(&g).expect("mappable");
    let reused = mapper.map_with(&mut ctx, &g).expect("mappable");
    assert_same_netlist(&fresh, &reused, "po edge cases");
    assert_eq!(eval_all(&fresh, &lib, 2), eval_all(&reused, &lib, 2));
}
