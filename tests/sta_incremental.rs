//! Differential suite for the incremental timing engine: the
//! persistent mapped design ([`techmap::MappedDesign`]), the
//! incremental sizing pass, and [`sta::IncrementalSta`] must price
//! every in-place edit **bit-identically** to the full
//! map → resize → STA oracle — across random in-place edit walks
//! (with rollbacks) on every `benchgen` design — and the SA loop
//! must produce byte-identical results with the engine on or off,
//! for 1 and 4 worker threads.

use aig::cut::CutDb;
use aig::incremental::{IncrementalAnalysis, Transaction};
use aig::{Aig, Lit, NodeId};
use cells::sky130ish;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use saopt::{optimize_seeds, CostEvaluator, EditScope, EvalContext, GroundTruthCost, SaOptions};
use techmap::{GateId, MapOptions, Mapper, NetDriver, NetId};
use transform::{InplaceMode, Recipe, ResynthCache, Transform};

mod common;
use common::random_aig_with;

/// Drives the exact engine protocol the SA loop uses — warm
/// `IncrementalAnalysis` + `CutDb`, speculative transactions carrying
/// local rewrites and raw substitutions, accept/reject with
/// rollbacks and evaluator re-syncs — asserting after every single
/// step that the incremental evaluator's metrics are bit-identical
/// to a full-pipeline oracle pricing the same graph.
fn drive_edit_walk(g0: &Aig, seed: u64, steps: usize) {
    let lib = sky130ish();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = g0.clone();
    let mut inc = IncrementalAnalysis::new(&g);
    let mut db = CutDb::new(4, 8);
    db.build(&g);
    let cache = ResynthCache::new();
    let mut ctx = EvalContext::new();
    let mut gt = GroundTruthCost::new(&lib);
    let mut oracle = GroundTruthCost::new(&lib);
    let probe = Mapper::new(&lib, MapOptions::default());
    let mut rows_since: NodeId = 0;

    for step in 0..steps {
        db.begin_edit();
        let mut txn = Transaction::begin(&mut g, &mut inc);
        if rng.gen_bool(0.7) {
            // The SA loop's move: a windowed local rewrite.
            let start = rng.gen_range(0..txn.aig().num_nodes() as NodeId);
            let mode = if rng.gen() {
                InplaceMode::Standard
            } else {
                InplaceMode::ZeroCost
            };
            transform::rewrite_inplace_window(&mut txn, &mut db, &cache, mode, start, 64);
        } else {
            // Harsher cover churn: raw substitutions.
            for _ in 0..rng.gen_range(1..3) {
                let ands: Vec<NodeId> = txn.aig().and_ids().collect();
                if ands.is_empty() {
                    break;
                }
                let node = ands[rng.gen_range(0..ands.len())];
                let with = Lit::new(rng.gen_range(0..node), rng.gen());
                txn.substitute(node, with);
                db.invalidate(txn.aig(), txn.analysis(), txn.analysis().last_dirty());
            }
        }
        let move_min = txn.min_touched();
        let since = rows_since.min(move_min);
        if probe.map(txn.aig()).is_err() {
            // Raw test substitutions are not function-preserving and
            // can leave a *live* constant node no cell matches; both
            // pipelines reject such graphs identically (asserted by
            // the mapper suite). Roll the move back and keep walking.
            txn.rollback();
            db.rollback_edit();
            continue;
        }
        let m_inc = gt.evaluate_edit(txn.aig(), &EditScope::new(&db, since), &mut ctx);
        let m_full = oracle.evaluate(txn.aig());
        assert!(
            m_inc.delay.to_bits() == m_full.delay.to_bits(),
            "step {step}: delay diverged: {} vs {}",
            m_inc.delay,
            m_full.delay
        );
        assert!(
            m_inc.area.to_bits() == m_full.area.to_bits(),
            "step {step}: area diverged: {} vs {}",
            m_inc.area,
            m_full.area
        );
        if rng.gen_bool(0.5) {
            txn.commit();
            db.commit_edit();
        } else {
            txn.rollback();
            db.rollback_edit();
            gt.resync_edit(&g, &EditScope::new(&db, since), &mut ctx);
            // The re-synced state must price the restored graph
            // bit-identically too.
            let m_back = gt.evaluate_edit(&g, &EditScope::new(&db, NodeId::MAX), &mut ctx);
            let m_ref = oracle.evaluate(&g);
            assert!(
                m_back.delay.to_bits() == m_ref.delay.to_bits()
                    && m_back.area.to_bits() == m_ref.area.to_bits(),
                "step {step}: post-rollback resync diverged"
            );
        }
        rows_since = NodeId::MAX;
    }
}

/// Random graphs: many shapes, dense edit mixes.
#[test]
fn edit_walks_match_oracle_on_random_graphs() {
    for seed in 0..4u64 {
        let g = random_aig_with(900 + seed, 8, 120, 4);
        drive_edit_walk(&g, 0xD1F ^ seed, 14);
    }
}

/// Every benchgen design (the paper's IWLS-like suite): realistic
/// mapped structures, fewer steps to bound runtime.
#[test]
fn edit_walks_match_oracle_on_benchgen_designs() {
    for design in benchgen::iwls_like_suite() {
        drive_edit_walk(&design.aig, 0xA11CE, 6);
    }
}

/// Netlist-level differential: random drive swaps on a tracked
/// mapped netlist; [`sta::IncrementalSta::update`] must keep every
/// arrival bit-identical to the full-recompute oracle.
#[test]
fn incremental_sta_matches_oracle_under_drive_swaps() {
    let lib = sky130ish();
    let mapper = Mapper::new(&lib, MapOptions::default());
    for design in benchgen::iwls_like_suite() {
        let mut rng = SmallRng::seed_from_u64(77);
        let mut nl = mapper.map(&design.aig).expect("mappable");
        techmap::resize_greedy(&mut nl, &lib, 2);
        nl.enable_tracking(&lib);
        // Builder netlists are id-topological: ids are a valid order.
        let order: Vec<u64> = (0..nl.num_gates() as u64).collect();
        let mut sta = sta::IncrementalSta::new();
        sta.build(&nl, &lib, &order);
        let mut bufs = sta::StaBuffers::new();
        for _ in 0..20 {
            let gid = GateId(rng.gen_range(0..nl.num_gates() as u32));
            let variants = lib.drive_variants(nl.gate(gid).cell);
            let cell = variants[rng.gen_range(0..variants.len())];
            nl.set_gate_cell(gid, cell);
            // The dirty-net contract: the gate itself plus the
            // drivers of its input nets (their loads changed).
            let mut seeds = vec![gid];
            for &n in &nl.gate(gid).inputs {
                if let NetDriver::Gate(d) = *nl.driver(n) {
                    seeds.push(d);
                }
            }
            sta.update(&nl, &lib, &order, &seeds);
            let (delay, _) = sta::delay_and_area_into(&nl, &lib, &mut bufs);
            assert!(
                sta.max_delay_ps(&nl).to_bits() == delay.to_bits(),
                "{}: delay diverged after swap",
                design.name
            );
            let loads = nl.net_loads_ff(&lib);
            let mut arr = Vec::new();
            sta::arrivals_into(&nl, &lib, &loads, &mut arr);
            for (n, a) in arr.iter().enumerate() {
                assert!(
                    sta.arrival(NetId(n as u32)).to_bits() == a.to_bits(),
                    "{}: net {n} arrival diverged",
                    design.name
                );
            }
        }
    }
}

/// Full SA runs under the ground-truth evaluator: engine on vs off
/// (clone-based oracle) must be byte-identical, for 1 and 4 worker
/// threads (`optimize_seeds` parallel chains with shared per-worker
/// contexts).
#[test]
fn sa_ground_truth_engine_and_threads_byte_identical() {
    struct EnvGuard(Option<String>);
    impl Drop for EnvGuard {
        fn drop(&mut self) {
            match self.0.take() {
                Some(v) => std::env::set_var("AIG_THREADS", v),
                None => std::env::remove_var("AIG_THREADS"),
            }
        }
    }
    let _guard = EnvGuard(std::env::var("AIG_THREADS").ok());

    let g = random_aig_with(4242, 9, 130, 4);
    let lib = sky130ish();
    let actions = vec![
        Recipe(vec![Transform::Rewrite]),
        Recipe(vec![Transform::RewriteZero]),
        Recipe(vec![Transform::Balance]),
        Recipe(vec![Transform::Rewrite, Transform::Balance]),
    ];
    let opts = SaOptions {
        iterations: 8,
        ..SaOptions::default()
    };
    let seeds = [3u64, 14, 15];
    let run = |threads: &str, inplace: bool| {
        std::env::set_var("AIG_THREADS", threads);
        let results = if inplace {
            optimize_seeds(&g, || GroundTruthCost::new(&lib), &actions, &opts, &seeds)
        } else {
            // Engine off: thread a disabling context through serial
            // runs (optimize_seeds always uses default contexts).
            seeds
                .iter()
                .map(|&seed| {
                    let mut ctx = EvalContext::new();
                    ctx.set_inplace_transactions(false);
                    let mut eval = GroundTruthCost::new(&lib);
                    saopt::optimize_with(
                        &g,
                        &mut eval,
                        &actions,
                        &SaOptions { seed, ..opts },
                        &mut ctx,
                    )
                })
                .collect::<Vec<_>>()
        };
        results
            .into_iter()
            .map(|r| {
                (
                    aig::aiger::to_ascii(&r.best),
                    r.history,
                    r.evaluated
                        .iter()
                        .map(|m| (m.delay.to_bits(), m.area.to_bits()))
                        .collect::<Vec<_>>(),
                    r.accepted,
                )
            })
            .collect::<Vec<_>>()
    };
    let on_1 = run("1", true);
    let off_1 = run("1", false);
    let on_4 = run("4", true);
    let off_4 = run("4", false);
    assert_eq!(on_1, off_1, "engine on/off diverged (1 thread)");
    assert_eq!(on_1, on_4, "worker count changed engine-on results");
    assert_eq!(off_1, off_4, "worker count changed engine-off results");
}
