//! Quickstart: build a circuit, optimize it, map it, and time it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use aig_timing::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build an 8-bit ripple adder AIG with the word-level helpers.
    let mut g = Aig::new();
    let a = benchgen::word::input_word(&mut g, 8, "a");
    let b = benchgen::word::input_word(&mut g, 8, "b");
    let (sum, carry) = benchgen::word::add(&mut g, &a, &b);
    for (i, &s) in sum.iter().enumerate() {
        g.add_output(s, Some(format!("s{i}")));
    }
    g.add_output(carry, Some("cout"));
    println!("built: {}", g.stats());

    // 2. Optimize with a classic script (balance; rewrite; refactor).
    let script = Recipe(vec![
        Transform::Balance,
        Transform::Rewrite,
        Transform::Refactor,
    ]);
    let opt = script.apply(&g);
    println!("after `{script}`: {}", opt.stats());

    // 3. The transforms are function-preserving — verify exhaustively.
    assert!(aig::sim::equiv_exhaustive(&g, &opt)?);

    // 4. Map onto the builtin 130nm-class library and run STA.
    let lib = sky130ish();
    let mapper = Mapper::new(&lib, MapOptions::default());
    let netlist = mapper.map(&opt)?;
    let report = sta::analyze(&netlist, &lib);
    println!(
        "mapped: {} gates, {:.1} um2, critical path {:.1} ps",
        netlist.num_gates(),
        report.area_um2,
        report.max_delay_ps
    );
    println!("cell usage:");
    for (cell, n) in netlist.cell_histogram(&lib) {
        println!("  {cell:12} x{n}");
    }
    println!("critical path:");
    for stage in &report.critical_path {
        println!(
            "  {:12} pin {} -> arrival {:8.1} ps (load {:.1} fF)",
            stage.cell_name, stage.pin, stage.arrival_ps, stage.load_ff
        );
    }

    // 5. The paper's point: AIG levels are a poor proxy for that
    // delay. Extract the features its predictor uses instead.
    let fv = features::extract(&opt);
    println!("\nTable II features:\n{fv}");
    Ok(())
}
