//! AIGER interoperability: read, optimize, verify, write.
//!
//! The AIGER format is the lingua franca of AIG tooling (ABC, the
//! IWLS contests, model checkers). This example round-trips a design
//! through ASCII and binary AIGER, optimizing in between, so the
//! library can slot into an existing synthesis pipeline.
//!
//! ```sh
//! cargo run --release --example aiger_workflow
//! ```

use aig::{aiger, sim::equiv_exhaustive};
use aig_timing::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A majority-of-XORs circuit in hand-written ASCII AIGER.
    let source = "\
aag 11 4 0 2 7
2
4
6
8
18
22
10 3 5
12 2 4
14 11 13
16 14 9
18 17 15
20 6 8
22 21 15
i0 a
i1 b
i2 c
i3 d
o0 f
o1 g
";
    let g = aiger::from_ascii(source)?;
    println!(
        "parsed: {} ({} inputs, {} outputs)",
        g.stats(),
        g.num_inputs(),
        g.num_outputs()
    );

    // Optimize with an ABC-style script.
    let script = Recipe(vec![
        Transform::Balance,
        Transform::Rewrite,
        Transform::RewriteZero,
        Transform::Refactor,
    ]);
    let opt = script.apply(&g);
    println!("after `{script}`: {}", opt.stats());
    assert!(
        equiv_exhaustive(&g, &opt)?,
        "optimization must preserve function"
    );

    // Write both flavors into a temp dir and read them back.
    let dir = std::env::temp_dir();
    let ascii_path = dir.join("aig_timing_example.aag");
    let binary_path = dir.join("aig_timing_example.aig");
    aiger::write_file(&opt, &ascii_path)?;
    aiger::write_file(&opt, &binary_path)?;
    let back_ascii = aiger::read_file(&ascii_path)?;
    let back_binary = aiger::read_file(&binary_path)?;
    assert!(equiv_exhaustive(&opt, &back_ascii)?);
    assert!(equiv_exhaustive(&opt, &back_binary)?);
    println!(
        "round-tripped through {} ({} bytes) and {} ({} bytes)",
        ascii_path.display(),
        std::fs::metadata(&ascii_path)?.len(),
        binary_path.display(),
        std::fs::metadata(&binary_path)?.len(),
    );

    // Map the optimized design and report timing.
    let lib = sky130ish();
    let netlist = Mapper::new(&lib, MapOptions::default()).map(&opt)?;
    let (delay, area) = sta::delay_and_area(&netlist, &lib);
    println!(
        "mapped: {:.1} ps, {:.1} um2, {} gates",
        delay,
        area,
        netlist.num_gates()
    );

    let _ = std::fs::remove_file(ascii_path);
    let _ = std::fs::remove_file(binary_path);
    Ok(())
}
