//! Train a post-mapping delay predictor and use it on unseen AIGs.
//!
//! Mirrors the paper's §III-C pipeline at demo scale: generate
//! labeled AIG variants, train gradient-boosted trees on Table II
//! features, and compare predictions against ground-truth mapping +
//! STA on variants the model never saw.
//!
//! ```sh
//! cargo run --release --example timing_prediction
//! ```

use aig_timing::prelude::*;
use experiments::datagen::{generate_variants, label_variants, labeled_set, Target};
use gbt::pct_error_stats;

fn main() {
    let lib = sky130ish();
    let design = benchgen::ex28();
    println!("design {} ({})", design.name, design.aig.stats());

    // 1. Training corpus: 200 labeled variants.
    let train = labeled_set(&design, 200, 1, &lib);
    let (lo, hi) = train.node_range();
    println!(
        "corpus: {} variants, {lo:.0}-{hi:.0} AND nodes",
        train.samples.len()
    );

    // 2. Train the delay model (validation split for early stopping).
    let full = train.to_dataset(Target::Delay);
    let (tr, va) = full.shuffle_split(0.85, 99);
    let (model, log) = gbt::train_with_validation(
        &tr,
        Some(&va),
        &GbtParams {
            num_rounds: 300,
            ..GbtParams::default()
        },
    );
    println!(
        "trained {} trees (best round {}, valid RMSE {:.1} ps)",
        model.trees.len(),
        log.best_round,
        log.valid_rmse
            .get(log.best_round)
            .copied()
            .unwrap_or(f64::NAN)
    );

    // 3. Evaluate on fresh, unseen variants.
    let unseen = generate_variants(&design.aig, 40, 777);
    let truths = label_variants(&unseen, &lib);
    let preds: Vec<f64> = unseen
        .iter()
        .map(|v| model.predict_f64(features::extract(v).as_slice()))
        .collect();
    let truth_delays: Vec<f64> = truths.iter().map(|&(d, _)| d).collect();
    let stats = pct_error_stats(&preds, &truth_delays);
    println!(
        "unseen variants: mean |%err| = {:.2}%, max = {:.2}%, std = {:.2}%",
        stats.mean, stats.max, stats.std
    );

    // 4. Which features matter? (gain importance)
    let mut imp: Vec<(f64, &str)> = model
        .feature_importance()
        .into_iter()
        .zip(features::feature_names())
        .collect();
    imp.sort_by(|a, b| b.0.total_cmp(&a.0));
    println!("top feature importances:");
    for (gain, name) in imp.iter().take(6) {
        println!("  {name:38} {gain:10.0}");
    }
}
