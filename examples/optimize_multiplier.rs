//! Run all three optimization flows on a multiplier and compare.
//!
//! Demo-scale version of the paper's headline experiment (Fig. 5):
//! the ML-guided SA flow should track the ground-truth flow's quality
//! at a fraction of its per-iteration cost, and both should beat the
//! proxy-metric baseline.
//!
//! ```sh
//! cargo run --release --example optimize_multiplier
//! ```

use aig_timing::prelude::*;
use experiments::datagen::{labeled_set, Target};
use saopt::CostEvaluator;
use std::time::Instant;

fn main() {
    let lib = sky130ish();
    let design = benchgen::multiplier(6);
    println!("optimizing {} ({})", design.name, design.aig.stats());
    let actions = recipes();
    let opts = SaOptions {
        iterations: 25,
        weight_delay: 0.7,
        weight_area: 0.3,
        seed: 5,
        ..SaOptions::default()
    };
    let mut gt_eval = GroundTruthCost::new(&lib);

    // Baseline flow: proxy metrics in the loop.
    let t0 = Instant::now();
    let base = optimize(&design.aig, &mut ProxyCost, &actions, &opts);
    let base_time = t0.elapsed();

    // Ground-truth flow: mapping + STA in the loop.
    let t1 = Instant::now();
    let gt = optimize(&design.aig, &mut gt_eval, &actions, &opts);
    let gt_time = t1.elapsed();

    // ML flow: train quick models on multiplier variants, then use
    // inference in the loop.
    let t2 = Instant::now();
    let corpus = labeled_set(&design, 150, 42, &lib);
    let delay_model = gbt::train(
        &corpus.to_dataset(Target::Delay),
        &GbtParams {
            num_rounds: 200,
            ..GbtParams::default()
        },
    );
    let area_model = gbt::train(
        &corpus.to_dataset(Target::Area),
        &GbtParams {
            num_rounds: 200,
            ..GbtParams::default()
        },
    );
    let train_time = t2.elapsed();
    let t3 = Instant::now();
    let mut ml_eval = MlCost::new(&delay_model, &area_model);
    let ml = optimize(&design.aig, &mut ml_eval, &actions, &opts);
    let ml_time = t3.elapsed();

    // Final comparison is always in ground-truth units.
    println!("\nflow          loop time   final delay   final area");
    for (name, result, time) in [
        ("baseline", &base, base_time),
        ("ground-truth", &gt, gt_time),
        ("ml", &ml, ml_time),
    ] {
        let m = gt_eval.evaluate(&result.best);
        println!(
            "{name:13} {:8.2}s {:10.1} ps {:10.1} um2",
            time.as_secs_f64(),
            m.delay,
            m.area
        );
    }
    println!(
        "(ml model training took {:.2}s, amortized across all future runs)",
        train_time.as_secs_f64()
    );
}
